//! Graphviz DOT export for task graphs and task sets.
//!
//! Purely a debugging/documentation aid: `dot -Tpng` renders the generated
//! workloads so experiment write-ups can show what a "TGFF-like graph with 12
//! nodes" actually looks like.

use crate::dag::TaskGraph;
use crate::periodic::TaskSet;
use std::fmt::Write;

/// Render one task graph as a DOT digraph. Node labels show `name (wcet)`.
pub fn graph_to_dot(g: &TaskGraph) -> String {
    let mut out = String::with_capacity(64 * g.node_count());
    writeln!(out, "digraph \"{}\" {{", escape(g.name())).unwrap();
    writeln!(out, "  rankdir=TB;").unwrap();
    writeln!(out, "  node [shape=box, fontname=\"monospace\"];").unwrap();
    for (id, node) in g.nodes() {
        writeln!(out, "  {} [label=\"{} ({})\"];", id.index(), escape(&node.name), node.wcet)
            .unwrap();
    }
    for (from, to) in g.edges() {
        writeln!(out, "  {} -> {};", from.index(), to.index()).unwrap();
    }
    out.push_str("}\n");
    out
}

/// Render a whole task set as one DOT file with a cluster per graph,
/// annotated with its period.
pub fn taskset_to_dot(set: &TaskSet) -> String {
    let mut out = String::from("digraph taskset {\n  rankdir=TB;\n  node [shape=box];\n");
    for (gid, pg) in set.iter() {
        let g = pg.graph();
        writeln!(out, "  subgraph cluster_{} {{", gid.index()).unwrap();
        writeln!(out, "    label=\"{} (D = {})\";", escape(g.name()), pg.period()).unwrap();
        for (id, node) in g.nodes() {
            writeln!(
                out,
                "    g{}_{} [label=\"{} ({})\"];",
                gid.index(),
                id.index(),
                escape(&node.name),
                node.wcet
            )
            .unwrap();
        }
        for (from, to) in g.edges() {
            writeln!(
                out,
                "    g{}_{} -> g{}_{};",
                gid.index(),
                from.index(),
                gid.index(),
                to.index()
            )
            .unwrap();
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::TaskGraphBuilder;
    use crate::periodic::{PeriodicTaskGraph, TaskSet};

    fn tiny() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("tiny");
        let a = b.add_node("a", 3);
        let c = b.add_node("b", 4);
        b.add_edge(a, c).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_edges_and_wcets() {
        let dot = graph_to_dot(&tiny());
        assert!(dot.starts_with("digraph \"tiny\""));
        assert!(dot.contains("a (3)"));
        assert!(dot.contains("b (4)"));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let mut b = TaskGraphBuilder::new("we\"ird");
        b.add_node("n\"ode", 1);
        let dot = graph_to_dot(&b.build().unwrap());
        assert!(dot.contains("we\\\"ird"));
        assert!(dot.contains("n\\\"ode"));
    }

    #[test]
    fn taskset_dot_emits_one_cluster_per_graph() {
        let mut set = TaskSet::new();
        set.push(PeriodicTaskGraph::new(tiny(), 10.0).unwrap());
        set.push(PeriodicTaskGraph::new(tiny(), 20.0).unwrap());
        let dot = taskset_to_dot(&set);
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
        assert!(dot.contains("D = 10"));
        assert!(dot.contains("D = 20"));
        assert!(dot.contains("g0_0 -> g0_1;"));
        assert!(dot.contains("g1_0 -> g1_1;"));
    }
}
