//! Strongly-typed identifiers for nodes and graphs.
//!
//! Plain `usize` indices invite cross-container mixups (a node index used to
//! index a graph list and vice versa). These newtypes are `Copy`, order well,
//! hash cheaply and cost nothing at runtime.

use std::fmt;

/// Identifier of a node (task) **within one task graph**.
///
/// `NodeId`s are dense indices assigned in insertion order by
/// [`TaskGraphBuilder`](crate::TaskGraphBuilder); they index directly into the
/// graph's node table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Construct from a raw index.
    ///
    /// Only meaningful for indices previously handed out by the owning
    /// graph's builder; out-of-range ids are caught by the graph accessors.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        NodeId(u32::try_from(ix).expect("node index exceeds u32 range"))
    }

    /// The dense index of this node inside its graph's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a task graph **within one task set**.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GraphId(pub(crate) u32);

impl GraphId {
    /// Construct from a raw index into the task set.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        GraphId(u32::try_from(ix).expect("graph index exceeds u32 range"))
    }

    /// The dense index of this graph inside its task set.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn graph_id_round_trips_through_index() {
        let id = GraphId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "T7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(GraphId::from_index(0) < GraphId::from_index(9));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32 range")]
    fn node_id_rejects_huge_indices() {
        let _ = NodeId::from_index(usize::MAX);
    }
}
