//! Property tests for the portfolio's frontier math, pinning the claims
//! the report layer relies on:
//!
//! * no frontier point is dominated by any raced point, and every
//!   dominated point is off the frontier;
//! * the analysis is **bit-identical** under permutation of the specs and
//!   under worker-thread count (f64s compared by `to_bits`);
//! * hypervolume matches an independent 2-D staircase computation on
//!   random point sets (the 3-D hand references live in the unit tests).

use bas_portfolio::{analyze, dominates, frontier_flags, hypervolume, run_portfolio};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random point set: `n` points of dimension `d` on a coarse grid (so
/// ties and duplicates actually happen).
fn random_points(rng: &mut StdRng, n: usize, d: usize) -> Vec<Vec<f64>> {
    (0..n).map(|_| (0..d).map(|_| rng.gen_range(0..20) as f64 / 2.0).collect()).collect()
}

/// Independent 2-D hypervolume: sort the frontier by x and sum the
/// staircase rectangles against the reference corner.
fn staircase_area_2d(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut inside: Vec<&Vec<f64>> =
        points.iter().filter(|p| p[0] < reference[0] && p[1] < reference[1]).collect();
    inside.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
    let mut area = 0.0;
    let mut ceiling = reference[1];
    for p in inside {
        if p[1] < ceiling {
            area += (reference[0] - p[0]) * (ceiling - p[1]);
            ceiling = p[1];
        }
    }
    area
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frontier_points_are_exactly_the_undominated_ones(seed in 0u64..u64::MAX / 2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..24usize);
        let d = rng.gen_range(1..5usize);
        let points = random_points(&mut rng, n, d);
        let flags = frontier_flags(&points);
        for (i, p) in points.iter().enumerate() {
            let dominated = points.iter().any(|q| dominates(q, p));
            prop_assert_eq!(flags[i], !dominated, "point {} of {:?}", i, points);
            if !flags[i] {
                // Every off-frontier point is beaten by some frontier point:
                // dominance is transitive, so a maximal dominator is frontier.
                let beaten_by_frontier = points
                    .iter()
                    .enumerate()
                    .any(|(j, q)| flags[j] && dominates(q, p));
                prop_assert!(beaten_by_frontier, "point {} of {:?}", i, points);
            }
        }
        prop_assert!(flags.iter().any(|&f| f), "a non-empty set always has a frontier");
    }

    #[test]
    fn analysis_is_bit_identical_under_permutation(seed in 0u64..u64::MAX / 2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..16usize);
        let d = rng.gen_range(1..4usize);
        let points = random_points(&mut rng, n, d);
        let base = analyze(&points, None);
        // A deterministic pseudo-random permutation of the points.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let shuffled: Vec<Vec<f64>> = order.iter().map(|&i| points[i].clone()).collect();
        let permuted = analyze(&shuffled, None);
        prop_assert_eq!(
            base.frontier_hypervolume.to_bits(),
            permuted.frontier_hypervolume.to_bits(),
            "frontier hypervolume drifted under permutation of {:?}", points
        );
        for (new_ix, &old_ix) in order.iter().enumerate() {
            prop_assert_eq!(base.on_frontier[old_ix], permuted.on_frontier[new_ix]);
            prop_assert_eq!(
                base.hypervolume[old_ix].to_bits(),
                permuted.hypervolume[new_ix].to_bits()
            );
            prop_assert_eq!(
                base.coverage[old_ix].to_bits(),
                permuted.coverage[new_ix].to_bits()
            );
        }
        for (a, b) in base.reference.iter().zip(&permuted.reference) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // The auto-pick is the same *point* (ties broken by value, and by
        // input order only between fully identical points).
        prop_assert_eq!(
            &points[base.auto_pick], &shuffled[permuted.auto_pick],
            "auto-pick changed under permutation of {:?}", points
        );
    }

    #[test]
    fn hypervolume_matches_the_2d_staircase(seed in 0u64..u64::MAX / 2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..20usize);
        let points = random_points(&mut rng, n, 2);
        let reference = [10.5, 10.5];
        let hv = hypervolume(&points, &reference);
        let expected = staircase_area_2d(&points, &reference);
        prop_assert!(
            (hv - expected).abs() < 1e-9,
            "HSO {} vs staircase {} on {:?}", hv, expected, points
        );
    }
}

/// The portfolio run itself is bit-identical across worker-thread counts,
/// like every sweep in the repo: parallelism is a pure wall-clock
/// optimization, and the analytics inherit that.
#[test]
fn portfolio_reports_are_bit_identical_across_thread_counts() {
    use bas_core::{Scenario, ScenarioKind};
    let run_with = |threads: &str| {
        let mut s = Scenario::preset(ScenarioKind::Portfolio);
        s.set("trials", "3").unwrap();
        s.set("specs", "laEDF+*/*,BAS-soc,BAS-kv").unwrap();
        s.set("horizon", "300").unwrap();
        s.set("threads", threads).unwrap();
        run_portfolio(&s).unwrap()
    };
    let one = run_with("1");
    let four = run_with("4");
    assert_eq!(one.frontier, four.frontier);
    assert_eq!(one.auto_pick, four.auto_pick);
    assert_eq!(one.frontier_hypervolume.to_bits(), four.frontier_hypervolume.to_bits());
    for (a, b) in one.specs.iter().zip(&four.specs) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.on_frontier, b.on_frontier);
        assert_eq!(a.hypervolume.to_bits(), b.hypervolume.to_bits(), "{}", a.label);
        assert_eq!(a.coverage.to_bits(), b.coverage.to_bits(), "{}", a.label);
        for (x, y) in a.point.iter().zip(&b.point) {
            assert_eq!(x.to_bits(), y.to_bits(), "{}", a.label);
        }
    }
    // And so is the serialized artifact, byte for byte.
    assert_eq!(one.to_json(), four.to_json());
    assert_eq!(one.to_text(), four.to_text());
}
