//! Pure Pareto math: dominance, frontier extraction, hypervolume and
//! coverage over point sets in **minimization orientation** (callers
//! negate maximized axes before handing points in; see [`crate::Axis`]).
//!
//! Everything here is deterministic in the strong sense the repo's sweeps
//! pin down: results are bit-identical under permutation of the input
//! points, because all floating-point reductions happen in one canonical
//! (lexicographically sorted) order.

/// Does `a` Pareto-dominate `b` (minimization): at least as good on every
/// axis and strictly better on at least one?
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Does `a` weakly dominate `b`: at least as good on every axis?
fn weakly_dominates(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// One flag per point: is it on the Pareto frontier (dominated by no other
/// point)? Duplicate points do not dominate each other, so tied specs all
/// stay on the frontier.
pub fn frontier_flags(points: &[Vec<f64>]) -> Vec<bool> {
    points.iter().map(|p| !points.iter().any(|q| dominates(q, p))).collect()
}

/// The hypervolume (dominated volume) of a point set against `reference`,
/// in minimization orientation: the volume of the region weakly dominated
/// by at least one point and at least as good as the reference on every
/// axis. Points not strictly better than the reference on every axis
/// contribute nothing. Exact (HSO recursive slicing), deterministic under
/// permutation of `points`.
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let mut pts: Vec<&[f64]> = points
        .iter()
        .map(Vec::as_slice)
        .filter(|p| {
            p.len() == reference.len()
                && p.iter().zip(reference).all(|(x, r)| x.is_finite() && x < r)
        })
        .collect();
    // Canonical order: every later float reduction happens in one
    // permutation-independent sequence.
    pts.sort_by(|a, b| a.iter().map(|x| x.to_bits()).cmp(b.iter().map(|x| x.to_bits())));
    pts.dedup();
    hv_sorted(&pts, reference)
}

/// HSO slicing over points already in canonical order, all strictly inside
/// the reference box.
fn hv_sorted(points: &[&[f64]], reference: &[f64]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let d = reference.len();
    if d == 1 {
        // All points beat the reference; the union of 1-D boxes is the
        // best point's box.
        let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        return reference[0] - best;
    }
    // Slice along the last axis: between consecutive cut values, the
    // cross-section is the (d-1)-dimensional union of the points at or
    // below the slab.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&i, &j| points[i][d - 1].total_cmp(&points[j][d - 1]));
    let mut total = 0.0;
    let mut prefix: Vec<&[f64]> = Vec::with_capacity(points.len());
    for (k, &i) in order.iter().enumerate() {
        prefix.push(&points[i][..d - 1]);
        let lo = points[i][d - 1];
        let hi = if k + 1 < order.len() { points[order[k + 1]][d - 1] } else { reference[d - 1] };
        let depth = hi - lo;
        if depth > 0.0 {
            total += depth * hv_sorted(&prefix, &reference[..d - 1]);
        }
    }
    total
}

/// The fraction of *other* points that `points[i]` weakly dominates
/// (0 when there are no other points). A crude "how much of the field
/// does this spec beat outright" score, complementing the frontier flag.
pub fn coverage(points: &[Vec<f64>], i: usize) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let beaten = points
        .iter()
        .enumerate()
        .filter(|&(j, q)| j != i && weakly_dominates(&points[i], q))
        .count();
    beaten as f64 / (points.len() - 1) as f64
}

/// The full analysis of one oriented point set: frontier membership,
/// per-point and frontier hypervolume, coverage and the auto-pick.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Per point: is it on the Pareto frontier?
    pub on_frontier: Vec<bool>,
    /// Per point: its individual hypervolume against the reference (the
    /// volume of its own box; 0 when not strictly better than the
    /// reference on every axis).
    pub hypervolume: Vec<f64>,
    /// Per point: fraction of other points it weakly dominates.
    pub coverage: Vec<f64>,
    /// Hypervolume of the whole frontier (= of the whole set; dominated
    /// points add no volume).
    pub frontier_hypervolume: f64,
    /// Index of the recommended point: the frontier member with the
    /// largest individual hypervolume, ties broken by axis values in axis
    /// order (smaller oriented value wins), then by index.
    pub auto_pick: usize,
    /// The reference point used, in the same (minimization) orientation as
    /// the input points.
    pub reference: Vec<f64>,
    /// Whether the reference was derived from the observed points (true)
    /// or pinned by the caller (false).
    pub reference_derived: bool,
}

/// Analyze an oriented (minimization) point set. `reference` pins the
/// hypervolume reference point; `None` derives it per axis as the worst
/// observed value plus 10% of the observed range (plus one unit when the
/// range is zero) — see the crate docs for the semantics contract.
///
/// # Panics
///
/// Panics when `points` is empty or the point/reference dimensions are
/// inconsistent — scenario validation rules both out upstream.
pub fn analyze(points: &[Vec<f64>], reference: Option<&[f64]>) -> Analysis {
    assert!(!points.is_empty(), "portfolio needs at least one point");
    let d = points[0].len();
    assert!(points.iter().all(|p| p.len() == d), "inconsistent point dimensions");
    let (reference, reference_derived) = match reference {
        Some(r) => {
            assert_eq!(r.len(), d, "reference dimension mismatch");
            (r.to_vec(), false)
        }
        None => (derive_reference(points), true),
    };
    let on_frontier = frontier_flags(points);
    let hv: Vec<f64> = points
        .iter()
        .map(std::slice::from_ref)
        .map(|single| hypervolume(single, &reference))
        .collect();
    let cov: Vec<f64> = (0..points.len()).map(|i| coverage(points, i)).collect();
    let frontier_hypervolume = hypervolume(points, &reference);
    let auto_pick = pick(points, &on_frontier, &hv);
    Analysis {
        on_frontier,
        hypervolume: hv,
        coverage: cov,
        frontier_hypervolume,
        auto_pick,
        reference,
        reference_derived,
    }
}

/// Worst observed value per axis, inflated by 10% of the observed range
/// (or by 1.0 when every point ties on the axis).
fn derive_reference(points: &[Vec<f64>]) -> Vec<f64> {
    let d = points[0].len();
    (0..d)
        .map(|k| {
            let worst = points.iter().map(|p| p[k]).fold(f64::NEG_INFINITY, f64::max);
            let best = points.iter().map(|p| p[k]).fold(f64::INFINITY, f64::min);
            let range = worst - best;
            worst + if range > 0.0 { 0.1 * range } else { 1.0 }
        })
        .collect()
}

/// The auto-pick rule (documented on [`Analysis::auto_pick`]).
fn pick(points: &[Vec<f64>], on_frontier: &[bool], hv: &[f64]) -> usize {
    let mut best = None;
    for i in 0..points.len() {
        if !on_frontier[i] {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => {
                hv[i] > hv[b]
                    || (hv[i] == hv[b]
                        && points[i]
                            .iter()
                            .zip(&points[b])
                            .find_map(|(x, y)| (x != y).then(|| x < y))
                            .unwrap_or(false))
            }
        };
        if better {
            best = Some(i);
        }
    }
    best.expect("a non-empty point set always has a frontier member")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_needs_a_strict_edge() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(dominates(&[1.0, 2.0], &[2.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]), "equal points tie");
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0]), "trade-offs do not dominate");
    }

    #[test]
    fn frontier_keeps_exactly_the_undominated_points() {
        let pts = vec![
            vec![1.0, 3.0], // frontier
            vec![2.0, 2.0], // frontier
            vec![3.0, 1.0], // frontier
            vec![3.0, 3.0], // dominated by (2,2)
            vec![1.0, 3.0], // duplicate of the first: also frontier
        ];
        assert_eq!(frontier_flags(&pts), vec![true, true, true, false, true]);
    }

    #[test]
    fn hypervolume_matches_the_hand_computed_2d_staircase() {
        // Points (1,3), (2,2), (3,1) against reference (4,4): three unit
        // steps of a staircase, total area 6.
        let pts = vec![vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]];
        assert_eq!(hypervolume(&pts, &[4.0, 4.0]), 6.0);
        // A dominated point adds nothing.
        let mut with_dominated = pts.clone();
        with_dominated.push(vec![3.0, 3.0]);
        assert_eq!(hypervolume(&with_dominated, &[4.0, 4.0]), 6.0);
    }

    #[test]
    fn hypervolume_matches_the_hand_computed_3d_reference() {
        // Boxes of (0,1,1) and (1,0,1) against (2,2,2): each box has
        // volume 2·1·1 = 2, their overlap is 1·1·1 = 1, union = 3.
        let pts = vec![vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 1.0]];
        assert_eq!(hypervolume(&pts, &[2.0, 2.0, 2.0]), 3.0);
        // A single point's hypervolume is its box volume.
        assert_eq!(hypervolume(&[vec![1.0, 1.0, 1.0]], &[2.0, 2.0, 2.0]), 1.0);
    }

    #[test]
    fn points_outside_the_reference_contribute_nothing() {
        assert_eq!(hypervolume(&[vec![5.0, 1.0]], &[4.0, 4.0]), 0.0);
        assert_eq!(hypervolume(&[vec![4.0, 1.0]], &[4.0, 4.0]), 0.0, "on the boundary");
        assert_eq!(hypervolume(&[], &[4.0, 4.0]), 0.0);
        let pts = vec![vec![9.0, 9.0], vec![1.0, 1.0]];
        assert_eq!(hypervolume(&pts, &[4.0, 4.0]), 9.0, "only the inside point counts");
    }

    #[test]
    fn coverage_counts_weakly_beaten_rivals() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 2.0], vec![2.0, 1.0], vec![0.5, 3.0]];
        assert_eq!(coverage(&pts, 0), 2.0 / 3.0, "(1,1) beats (1,2) and (2,1)");
        assert_eq!(coverage(&pts, 3), 0.0);
        assert_eq!(coverage(&[vec![1.0]], 0), 0.0, "no rivals, no coverage");
    }

    #[test]
    fn derived_reference_inflates_the_worst_point() {
        let a = analyze(&[vec![1.0, 10.0], vec![3.0, 2.0]], None);
        assert!(a.reference_derived);
        // Worst per axis: (3, 10); ranges (2, 8) → +10%: (3.2, 10.8).
        assert_eq!(a.reference, vec![3.2, 10.8]);
        // Zero range → one unit of headroom.
        let b = analyze(&[vec![5.0], vec![5.0]], None);
        assert_eq!(b.reference, vec![6.0]);
        // Every observed point gets positive volume under the derivation.
        assert!(a.hypervolume.iter().all(|&v| v > 0.0), "{:?}", a.hypervolume);
    }

    #[test]
    fn auto_pick_prefers_hypervolume_then_axis_order() {
        // (1,3) box 3·1=3, (2,2) box 2·2=4, (3,1) box 1·3=3 vs ref (4,4).
        let a = analyze(&[vec![1.0, 3.0], vec![2.0, 2.0], vec![3.0, 1.0]], Some(&[4.0, 4.0]));
        assert_eq!(a.auto_pick, 1);
        assert_eq!(a.frontier_hypervolume, 6.0);
        // Symmetric boxes tie on volume; the first axis breaks the tie.
        let b = analyze(&[vec![3.0, 1.0], vec![1.0, 3.0]], Some(&[4.0, 4.0]));
        assert_eq!(b.auto_pick, 1, "(1,3) wins on the first axis");
        // A dominated point is never picked, whatever its box volume.
        let c = analyze(&[vec![2.0, 2.0], vec![2.0, 3.0]], Some(&[40.0, 40.0]));
        assert_eq!(c.auto_pick, 0);
        assert!(!c.on_frontier[1]);
    }
}
