//! # bas-portfolio — racing scheduler portfolios on the Pareto frontier
//!
//! The paper (and the repo's sweeps) compare a handful of hand-picked
//! schedulers one metric at a time. This crate races a whole **portfolio**
//! of [`SchedulerSpec`](bas_core::SchedulerSpec)s — an explicit list, glob
//! patterns over the `governor+priority/scope` grammar, or the entire
//! grammar (`"all"`) — through one deterministic sweep, then reports the
//! result as multi-objective analytics instead of a flat table:
//!
//! * the **Pareto frontier** over configurable metric [`Axis`] values
//!   (energy × deadline misses × makespan by default; delivered charge and
//!   battery lifetime optional);
//! * per-spec **hypervolume** (the volume of objective space between a
//!   spec's point and the reference point — bigger is better) and
//!   **coverage** (the fraction of rival specs it weakly dominates);
//! * an **auto-pick**: the frontier member with the largest individual
//!   hypervolume, ties broken by axis values in `axes` order, then by
//!   lineup order.
//!
//! The sweep underneath is the same deterministic
//! [`Sweep`](bas_core::Sweep) path every other experiment uses (same
//! per-trial seeds across specs, bit-identical across thread counts), with
//! deadline misses counted instead of aborting the run — a spec that
//! misses is a *point* in objective space, not an error.
//!
//! Entry points: [`run_portfolio`] runs a `portfolio`-kind
//! [`Scenario`](bas_core::Scenario); [`adopt`] converts a plain `sweep`
//! scenario into its portfolio twin (whole grammar, default axes);
//! [`analyze`] is the pure frontier/hypervolume math, usable on any point
//! set.
//!
//! ## Reference-point semantics
//!
//! Hypervolume needs a reference point bounding the "acceptable" region.
//! When the scenario pins one (`reference` knob), it is used verbatim —
//! points not strictly better than it on every axis contribute zero
//! volume. When the scenario leaves it empty, the reference is **derived
//! from the observed points**: per axis, the worst observed value pushed
//! 10% of the observed range further (one unit further when all specs tie)
//! — so every observed point has positive volume and the frontier's
//! hypervolume is comparable *within* the report. Pinned references are
//! what to use when comparing across reports. Maximized axes
//! (`lifetime_min`) are negated internally, so "worst" and "further" are
//! orientation-aware; derivation is pinned by tests in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pareto;
mod report;
mod runner;

pub use pareto::{analyze, dominates, frontier_flags, hypervolume, Analysis};
pub use report::{PortfolioReport, SpecResult, SCHEMA};
pub use runner::{adopt, run_portfolio};

use bas_core::SpecReport;
use std::fmt;

/// A metric axis of the portfolio's objective space. Mirrors the axis
/// names accepted by the scenario layer
/// ([`bas_core::PORTFOLIO_AXES`]); each axis is the **mean over trials**
/// of the corresponding per-trial metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Battery-side energy consumed per trial, joules (minimized).
    EnergyJ,
    /// Deadline misses per trial (minimized).
    DeadlineMisses,
    /// Worst release-to-completion span per trial, seconds (minimized).
    Makespan,
    /// Battery charge consumed per trial, coulombs (minimized).
    ChargeC,
    /// Battery lifetime per trial, minutes (maximized; needs a battery).
    LifetimeMin,
}

impl Axis {
    /// Every axis, in presentation order (the order scenario files use).
    pub const ALL: [Axis; 5] =
        [Axis::EnergyJ, Axis::DeadlineMisses, Axis::Makespan, Axis::ChargeC, Axis::LifetimeMin];

    /// The scenario-file name of the axis.
    pub fn name(self) -> &'static str {
        match self {
            Axis::EnergyJ => "energy_j",
            Axis::DeadlineMisses => "deadline_misses",
            Axis::Makespan => "makespan",
            Axis::ChargeC => "charge_c",
            Axis::LifetimeMin => "lifetime_min",
        }
    }

    /// Look an axis up by its scenario-file name.
    pub fn from_name(name: &str) -> Option<Axis> {
        Axis::ALL.into_iter().find(|a| a.name() == name)
    }

    /// Whether bigger values are better on this axis. Internally such axes
    /// are negated so all the Pareto math minimizes.
    pub fn maximize(self) -> bool {
        matches!(self, Axis::LifetimeMin)
    }

    /// The axis value of one spec's sweep results: the mean over trials.
    /// `None` only for [`Axis::LifetimeMin`] without a battery.
    pub fn mean_of(self, spec: &SpecReport) -> Option<f64> {
        match self {
            Axis::EnergyJ => Some(spec.energy.mean),
            Axis::DeadlineMisses => Some(spec.metric(|t| t.deadline_misses as f64).mean),
            Axis::Makespan => Some(spec.makespan.mean),
            Axis::ChargeC => Some(spec.charge.mean),
            Axis::LifetimeMin => spec.lifetime_min.map(|s| s.mean),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Anything that can go wrong assembling or running a portfolio.
#[derive(Debug, Clone, PartialEq)]
pub enum PortfolioError {
    /// The scenario is not a portfolio (or failed validation).
    Scenario(String),
    /// The underlying sweep failed.
    Sweep(String),
}

impl fmt::Display for PortfolioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortfolioError::Scenario(e) => write!(f, "portfolio scenario: {e}"),
            PortfolioError::Sweep(e) => write!(f, "portfolio sweep: {e}"),
        }
    }
}

impl std::error::Error for PortfolioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_names_round_trip_and_match_the_scenario_vocabulary() {
        for axis in Axis::ALL {
            assert_eq!(Axis::from_name(axis.name()), Some(axis));
            assert!(
                bas_core::PORTFOLIO_AXES.contains(&axis.name()),
                "{axis} missing from bas_core::PORTFOLIO_AXES"
            );
        }
        assert_eq!(Axis::ALL.len(), bas_core::PORTFOLIO_AXES.len());
        assert_eq!(Axis::from_name("latency"), None);
        assert!(Axis::LifetimeMin.maximize());
        assert!(!Axis::EnergyJ.maximize());
    }
}
