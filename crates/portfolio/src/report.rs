//! The portfolio report: the raced sweep plus the frontier analytics,
//! rendered as a text table and as the stable `bas-portfolio/v1` JSON.
//!
//! ## JSON schema (`PortfolioReport::to_json`)
//!
//! ```text
//! {
//!   "schema": "bas-portfolio/v1",
//!   "scenario": "battery-aware",          // scenario name
//!   "base_seed": 9, "trials": 6, "pes": 1,
//!   "axes": ["energy_j", "deadline_misses", "makespan"],
//!   "reference": {"energy_j": 500.0, ...},   // user-orientation values
//!   "reference_derived": true,               // false when pinned in the file
//!   "specs": [                               // lineup order
//!     {"label": "kvEDF+pUBS/all",
//!      "point": {"energy_j": 431.9, ...},    // mean over trials per axis
//!      "on_frontier": true,
//!      "hypervolume": 123.4,                 // this point's own box
//!      "coverage": 0.25},                    // fraction of rivals weakly beaten
//!     ...
//!   ],
//!   "frontier": ["kvEDF+pUBS/all", ...],     // lineup order
//!   "frontier_hypervolume": 456.7,
//!   "auto_pick": "kvEDF+pUBS/all"
//! }
//! ```
//!
//! The schema is stable: fields may be added, never renamed or removed.
//! All analytics are reported in **user orientation** (lifetime in
//! minutes, bigger better); the minimization trick is internal.

use crate::pareto::analyze;
use crate::{Axis, PortfolioError};
use bas_core::report::json_string;
use bas_core::{Scenario, SweepReport, TextTable};
use std::fmt::Write as _;

/// Identifier of the JSON schema emitted by this version of the crate.
pub const SCHEMA: &str = "bas-portfolio/v1";

/// One raced spec's analytics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecResult {
    /// The spec's canonical label (or the spelling the lineup used).
    pub label: String,
    /// The spec's point in objective space: per axis, the mean over
    /// trials, in user orientation.
    pub point: Vec<f64>,
    /// Is the point on the Pareto frontier?
    pub on_frontier: bool,
    /// The point's individual hypervolume against the reference.
    pub hypervolume: f64,
    /// Fraction of rival specs this spec weakly dominates.
    pub coverage: f64,
}

/// Everything a portfolio run produced: the underlying sweep plus the
/// frontier analytics over it.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioReport {
    /// Scenario name.
    pub scenario: String,
    /// The sweep's base seed.
    pub base_seed: u64,
    /// Trials per spec.
    pub trials: usize,
    /// Processing elements of the platform.
    pub pes: usize,
    /// The objective axes, in scenario order.
    pub axes: Vec<Axis>,
    /// The hypervolume reference point, user orientation, one per axis.
    pub reference: Vec<f64>,
    /// Whether the reference was derived from the observed points.
    pub reference_derived: bool,
    /// Per-spec analytics, in lineup order.
    pub specs: Vec<SpecResult>,
    /// Labels of the frontier members, in lineup order.
    pub frontier: Vec<String>,
    /// Hypervolume of the whole frontier.
    pub frontier_hypervolume: f64,
    /// Label of the recommended spec (see [`crate::Analysis::auto_pick`]).
    pub auto_pick: String,
    /// The raced sweep itself (per-trial records, summaries).
    pub sweep: SweepReport,
}

impl PortfolioReport {
    /// Analyze a finished sweep against a portfolio scenario's axes and
    /// (optional) pinned reference point.
    pub fn from_sweep(scenario: &Scenario, sweep: SweepReport) -> Result<Self, PortfolioError> {
        let axes: Vec<Axis> = scenario
            .axes
            .iter()
            .map(|name| {
                Axis::from_name(name)
                    .ok_or_else(|| PortfolioError::Scenario(format!("unknown axis {name:?}")))
            })
            .collect::<Result<_, _>>()?;
        if sweep.specs.is_empty() {
            return Err(PortfolioError::Sweep("the sweep raced no specs".to_string()));
        }
        // Build the oriented (minimization) point set: one point per spec,
        // maximized axes negated.
        let mut points = Vec::with_capacity(sweep.specs.len());
        for spec in &sweep.specs {
            let mut point = Vec::with_capacity(axes.len());
            for axis in &axes {
                let mean = axis.mean_of(spec).ok_or_else(|| {
                    PortfolioError::Sweep(format!(
                        "axis {axis} is unavailable for spec {} (no battery co-simulation)",
                        spec.label
                    ))
                })?;
                point.push(if axis.maximize() { -mean } else { mean });
            }
            points.push(point);
        }
        let oriented_reference: Option<Vec<f64>> = (!scenario.reference.is_empty()).then(|| {
            scenario
                .reference
                .iter()
                .zip(&axes)
                .map(|(&r, a)| if a.maximize() { -r } else { r })
                .collect()
        });
        let analysis = analyze(&points, oriented_reference.as_deref());
        let unorient = |axis: &Axis, v: f64| if axis.maximize() { -v } else { v };
        let specs: Vec<SpecResult> = sweep
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| SpecResult {
                label: spec.label.clone(),
                point: points[i].iter().zip(&axes).map(|(&v, a)| unorient(a, v)).collect(),
                on_frontier: analysis.on_frontier[i],
                hypervolume: analysis.hypervolume[i],
                coverage: analysis.coverage[i],
            })
            .collect();
        let frontier: Vec<String> =
            specs.iter().filter(|s| s.on_frontier).map(|s| s.label.clone()).collect();
        let reference: Vec<f64> =
            analysis.reference.iter().zip(&axes).map(|(&v, a)| unorient(a, v)).collect();
        Ok(PortfolioReport {
            scenario: scenario.name.clone(),
            base_seed: sweep.base_seed,
            trials: sweep.trials,
            pes: scenario.pes,
            axes,
            reference,
            reference_derived: analysis.reference_derived,
            auto_pick: specs[analysis.auto_pick].label.clone(),
            specs,
            frontier,
            frontier_hypervolume: analysis.frontier_hypervolume,
            sweep,
        })
    }

    /// The text rendering: one table row per spec (axis means, frontier
    /// membership, hypervolume, coverage) plus the frontier summary and
    /// the auto-pick.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "portfolio: {} — {} specs × {} trials (base seed {})",
            self.scenario,
            self.specs.len(),
            self.trials,
            self.base_seed
        );
        let ref_cells: Vec<String> = self
            .axes
            .iter()
            .zip(&self.reference)
            .map(|(a, v)| format!("{a} {}", fmt_val(*v)))
            .collect();
        let _ = writeln!(
            out,
            "reference point ({}): {}",
            if self.reference_derived { "derived" } else { "pinned" },
            ref_cells.join(", ")
        );
        out.push('\n');
        let mut headers: Vec<&str> = vec!["spec"];
        let axis_names: Vec<&str> = self.axes.iter().map(|a| a.name()).collect();
        headers.extend(&axis_names);
        headers.extend(["front", "hypervol", "coverage"]);
        let mut table = TextTable::new(&headers);
        for s in &self.specs {
            let mut row: Vec<String> = vec![s.label.clone()];
            row.extend(s.point.iter().map(|&v| fmt_val(v)));
            row.push(if s.on_frontier { "*".to_string() } else { String::new() });
            row.push(fmt_val(s.hypervolume));
            row.push(format!("{:.2}", s.coverage));
            table.row(&row);
        }
        out.push_str(&table.render());
        out.push('\n');
        let _ = writeln!(
            out,
            "frontier ({} of {}): {}",
            self.frontier.len(),
            self.specs.len(),
            self.frontier.join(", ")
        );
        let _ = writeln!(out, "frontier hypervolume: {}", fmt_val(self.frontier_hypervolume));
        let _ = writeln!(out, "auto-pick: {}", self.auto_pick);
        out
    }

    /// Serialize as the stable `bas-portfolio/v1` JSON (module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_string(SCHEMA));
        let _ = writeln!(out, "  \"scenario\": {},", json_string(&self.scenario));
        let _ = writeln!(out, "  \"base_seed\": {},", self.base_seed);
        let _ = writeln!(out, "  \"trials\": {},", self.trials);
        let _ = writeln!(out, "  \"pes\": {},", self.pes);
        let axes: Vec<String> = self.axes.iter().map(|a| json_string(a.name())).collect();
        let _ = writeln!(out, "  \"axes\": [{}],", axes.join(", "));
        let _ = writeln!(out, "  \"reference\": {{{}}},", self.axis_map(&self.reference));
        let _ = writeln!(out, "  \"reference_derived\": {},", self.reference_derived);
        out.push_str("  \"specs\": [");
        for (i, s) in self.specs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"label\": {}, \"point\": {{{}}}, \"on_frontier\": {}, \
                 \"hypervolume\": {}, \"coverage\": {}}}",
                json_string(&s.label),
                self.axis_map(&s.point),
                s.on_frontier,
                json_number(s.hypervolume),
                json_number(s.coverage),
            );
        }
        out.push_str("\n  ],\n");
        let frontier: Vec<String> = self.frontier.iter().map(|l| json_string(l)).collect();
        let _ = writeln!(out, "  \"frontier\": [{}],", frontier.join(", "));
        let _ = writeln!(
            out,
            "  \"frontier_hypervolume\": {},",
            json_number(self.frontier_hypervolume)
        );
        let _ = writeln!(out, "  \"auto_pick\": {}", json_string(&self.auto_pick));
        out.push_str("}\n");
        out
    }

    /// `"axis": value` pairs in axis order, for JSON objects.
    fn axis_map(&self, values: &[f64]) -> String {
        self.axes
            .iter()
            .zip(values)
            .map(|(a, &v)| format!("{}: {}", json_string(a.name()), json_number(v)))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// A float as a JSON number; non-finite values become `null` (mirrors the
/// `bas-report/v1` emitter).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Compact fixed-point rendering for the text table.
fn fmt_val(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e9 {
        format!("{v:.0}")
    } else if v.abs() >= 1000.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_core::{Scenario, ScenarioKind};

    fn tiny_report() -> PortfolioReport {
        let mut s = Scenario::preset(ScenarioKind::Portfolio);
        s.set("trials", "2").unwrap();
        s.set("specs", "EDF,BAS-2,laEDF").unwrap();
        s.set("horizon", "200").unwrap();
        crate::run_portfolio(&s).unwrap()
    }

    #[test]
    fn report_carries_consistent_frontier_analytics() {
        let r = tiny_report();
        assert_eq!(r.specs.len(), 3);
        assert_eq!(r.trials, 2);
        assert!(!r.frontier.is_empty(), "a non-empty race always has a frontier");
        assert!(r.frontier.contains(&r.auto_pick), "auto-pick must sit on the frontier");
        for s in &r.specs {
            assert_eq!(s.on_frontier, r.frontier.contains(&s.label));
            assert_eq!(s.point.len(), r.axes.len());
            assert!(s.hypervolume >= 0.0 && s.coverage >= 0.0 && s.coverage <= 1.0);
        }
        assert!(r.reference_derived, "preset pins no reference point");
        assert!(
            r.frontier_hypervolume >= r.specs.iter().map(|s| s.hypervolume).fold(0.0, f64::max),
            "the union dominates every individual box"
        );
    }

    #[test]
    fn json_schema_has_the_pinned_shape() {
        let r = tiny_report();
        let json = r.to_json();
        for needle in [
            "\"schema\": \"bas-portfolio/v1\"",
            "\"scenario\": \"portfolio\"",
            "\"axes\": [\"energy_j\", \"deadline_misses\", \"makespan\"]",
            "\"reference\": {\"energy_j\": ",
            "\"reference_derived\": true",
            "\"on_frontier\": ",
            "\"frontier\": [",
            "\"frontier_hypervolume\": ",
            "\"auto_pick\": ",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
        }
        // Deterministic: rendering twice gives the same bytes.
        assert_eq!(json, r.to_json());
    }

    #[test]
    fn text_rendering_names_the_frontier_and_pick() {
        let r = tiny_report();
        let text = r.to_text();
        assert!(text.contains("portfolio: portfolio — 3 specs × 2 trials"), "{text}");
        assert!(text.contains("reference point (derived)"), "{text}");
        assert!(text.contains("auto-pick: "), "{text}");
        for s in &r.specs {
            assert!(text.contains(&s.label), "{text}");
        }
    }
}
