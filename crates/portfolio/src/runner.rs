//! Racing the portfolio: expand the spec set, run one deterministic sweep
//! over it, analyze the result.

use crate::{PortfolioError, PortfolioReport};
use bas_core::{expand_spec_patterns, Scenario, ScenarioKind, Sweep};
use bas_sim::DeadlineMode;

/// Convert a plain `sweep` scenario into its portfolio twin: the same
/// workload, platform, battery, horizon and seeds, but racing the **whole
/// grammar** (`specs = ["all"]`) over the default axes. A scenario already
/// of the portfolio kind passes through unchanged; other kinds are
/// rejected.
pub fn adopt(mut scenario: Scenario) -> Result<Scenario, PortfolioError> {
    match scenario.kind {
        ScenarioKind::Portfolio => Ok(scenario),
        ScenarioKind::Sweep => {
            scenario.kind = ScenarioKind::Portfolio;
            scenario.specs = vec!["all".to_string()];
            let preset = Scenario::preset(ScenarioKind::Portfolio);
            scenario.axes = preset.axes;
            scenario.reference = Vec::new();
            scenario.validate().map_err(|e| PortfolioError::Scenario(e.to_string()))?;
            Ok(scenario)
        }
        other => Err(PortfolioError::Scenario(format!(
            "kind `{other}` cannot race as a portfolio (expected portfolio or sweep)"
        ))),
    }
}

/// Race a `portfolio`-kind scenario: expand its spec patterns, run every
/// spec through one deterministic [`Sweep`] (same trial seeds for every
/// spec, bit-identical across thread counts, deadline misses counted
/// rather than fatal), and analyze the frontier.
pub fn run_portfolio(scenario: &Scenario) -> Result<PortfolioReport, PortfolioError> {
    if scenario.kind != ScenarioKind::Portfolio {
        return Err(PortfolioError::Scenario(format!(
            "run_portfolio only runs `portfolio` scenarios, not `{}`",
            scenario.kind
        )));
    }
    scenario.validate().map_err(|e| PortfolioError::Scenario(e.to_string()))?;
    let specs = expand_spec_patterns(&scenario.specs)
        .map_err(|e| PortfolioError::Scenario(e.to_string()))?;
    let platform =
        scenario.build_platform().map_err(|e| PortfolioError::Scenario(e.to_string()))?;
    let mut sweep = Sweep::over_seeds(scenario.seed, scenario.trials)
        .specs(specs)
        .platform(&platform)
        .mapper(scenario.mapper_kind())
        .horizon(scenario.horizon)
        .threads(scenario.threads)
        .sampler(scenario.sampler)
        .freq_policy(scenario.freq)
        // A missed deadline is a coordinate, not an abort: the whole point
        // is to see where aggressive slowdowns trade feasibility away.
        .deadline_mode(DeadlineMode::DropAndCount);
    sweep = if scenario.uses_generator() {
        sweep.workload_with(|seed| scenario.trial_set(seed).map_err(|e| e.to_string()))
    } else {
        let config =
            scenario.workload_config().map_err(|e| PortfolioError::Scenario(e.to_string()))?;
        sweep.workload(config)
    };
    if scenario.battery != "none" {
        sweep = sweep
            .battery(|seed| scenario.build_battery(seed).expect("battery name validated above"));
    }
    let report = sweep.run().map_err(|e| PortfolioError::Sweep(e.to_string()))?;
    PortfolioReport::from_sweep(scenario, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(specs: &str) -> Scenario {
        let mut s = Scenario::preset(ScenarioKind::Portfolio);
        s.set("trials", "2").unwrap();
        s.set("specs", specs).unwrap();
        s.set("horizon", "200").unwrap();
        s
    }

    #[test]
    fn globs_race_their_whole_expansion() {
        let r = run_portfolio(&tiny("laEDF+*/*")).unwrap();
        assert_eq!(r.specs.len(), 8, "4 priorities × 2 scopes");
        assert!(r.specs.iter().all(|s| s.label.starts_with("laEDF+")));
    }

    #[test]
    fn all_races_the_whole_grammar() {
        let r = run_portfolio(&tiny("all")).unwrap();
        assert_eq!(r.specs.len(), 40, "5 governors × 4 priorities × 2 scopes");
    }

    #[test]
    fn specs_share_trial_seeds() {
        let r = run_portfolio(&tiny("EDF,BAS-2")).unwrap();
        let seeds: Vec<Vec<u64>> =
            r.sweep.specs.iter().map(|s| s.trials.iter().map(|t| t.seed).collect()).collect();
        assert_eq!(seeds[0], seeds[1], "every spec races the same trials");
    }

    #[test]
    fn adopt_turns_a_sweep_into_a_whole_grammar_portfolio() {
        let mut sweep = Scenario::preset(ScenarioKind::Sweep);
        sweep.set("trials", "2").unwrap();
        let adopted = adopt(sweep).unwrap();
        assert_eq!(adopted.kind, ScenarioKind::Portfolio);
        assert_eq!(adopted.specs, vec!["all"]);
        assert_eq!(adopted.trials, 2, "sweep knobs survive adoption");
        assert_eq!(adopted.axes, vec!["energy_j", "deadline_misses", "makespan"]);

        let portfolio = Scenario::preset(ScenarioKind::Portfolio);
        assert_eq!(adopt(portfolio.clone()).unwrap(), portfolio, "pass-through");
        assert!(adopt(Scenario::preset(ScenarioKind::Fig4)).is_err());
    }

    #[test]
    fn non_portfolio_kinds_are_rejected() {
        let e = run_portfolio(&Scenario::preset(ScenarioKind::Sweep)).unwrap_err();
        assert!(e.to_string().contains("portfolio"), "{e}");
    }
}
