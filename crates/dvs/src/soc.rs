//! State-of-charge–aware frequency governing — the first governor that
//! actually *reads* the battery.
//!
//! [`SocFloor`] wraps any inner governor and watches the engine's
//! scheduler-visible [`bas_sim::BatteryView`]. While the battery is
//! comfortable
//! (state-of-charge at or above the threshold) the inner governor runs
//! untouched. Once the state-of-charge drops below the threshold, the wrap
//! stops honouring the inner governor's deep frequency dips: it floors
//! `fref` at the flat static-utilization rate `Σ WCi/Di`.
//!
//! Why flooring, and why that floor? The paper's §3 guidelines: a battery
//! near exhaustion is dominated by the rate-capacity effect, and what hurts
//! it most are the high-current *spikes* that follow over-aggressive slowdown
//! (defer work at a deep dip now, and laEDF must sprint at `fmax` when the
//! deferred worst case materializes — guideline G1's "avoid locally
//! increasing current shapes"). The flat `U · fmax` rate is the lowest
//! constant frequency that is feasible under EDF for *any* future workload,
//! so flooring there caps the worst spike the governor can set up while
//! still reclaiming everything above the floor. Raising `fref` can never
//! introduce a deadline miss, so the wrap inherits the inner governor's
//! miss-freedom unconditionally.
//!
//! Without a mounted battery (or above the threshold) the wrap is
//! transparent, which keeps it safe to put in any lineup.

use bas_sim::{FrequencyGovernor, SimState};
use bas_taskgraph::GraphId;

/// Default state-of-charge threshold below which the floor engages.
pub const DEFAULT_SOC_THRESHOLD: f64 = 0.5;

/// A battery-aware wrap: run `inner` while the battery is comfortable,
/// floor `fref` at the flat static-utilization rate once the
/// state-of-charge drops below `threshold`.
#[derive(Debug, Clone)]
pub struct SocFloor<G> {
    inner: G,
    threshold: f64,
}

impl<G: FrequencyGovernor> SocFloor<G> {
    /// Wrap `inner`, engaging the floor below `threshold` (a fraction of
    /// theoretical capacity in `[0, 1]`).
    pub fn new(inner: G, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold), "threshold is a capacity fraction");
        SocFloor { inner, threshold }
    }

    /// Wrap `inner` with the [`DEFAULT_SOC_THRESHOLD`].
    pub fn with_default_threshold(inner: G) -> Self {
        SocFloor::new(inner, DEFAULT_SOC_THRESHOLD)
    }

    /// The wrapped governor.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// The configured state-of-charge threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// True when the floor is engaged for `state` (battery mounted and its
    /// state-of-charge below the threshold).
    pub fn conserving(&self, state: &SimState) -> bool {
        state.battery().is_some_and(|b| b.state_of_charge < self.threshold)
    }
}

impl<G: FrequencyGovernor> FrequencyGovernor for SocFloor<G> {
    fn name(&self) -> &'static str {
        "socEDF"
    }

    fn frequency(&mut self, state: &SimState) -> f64 {
        let f = self.inner.frequency(state);
        if self.conserving(state) {
            f.max(state.static_utilization_hz())
        } else {
            f
        }
    }

    fn on_release(&mut self, state: &SimState, graph: GraphId) {
        self.inner.on_release(state, graph);
    }

    fn on_completion(&mut self, state: &SimState, task: bas_sim::TaskRef, actual: f64) {
        self.inner.on_completion(state, task, actual);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LaEdf;
    use bas_sim::BatteryView;
    use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn state() -> SimState {
        // T0: 6 cycles / D 12; T1: 3 cycles / D 6. Static U = 1.0.
        let mut set = TaskSet::new();
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("a", 6);
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 12.0).unwrap());
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("b", 3);
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 6.0).unwrap());
        SimState::new(set)
    }

    fn view(soc: f64) -> BatteryView {
        BatteryView { state_of_charge: soc, charge_delivered: 0.0, exhausted: false }
    }

    /// laEDF with only T0 released early in its window asks for well under
    /// the static utilization — the situation the floor exists for.
    fn released_state() -> SimState {
        let mut s = state();
        s.release(bas_taskgraph::GraphId::from_index(0), vec![6.0]);
        s.refresh_edf();
        s
    }

    #[test]
    fn transparent_without_a_battery() {
        let mut s = released_state();
        s.set_battery_view(None);
        let mut plain = LaEdf::with_fmax(1.0);
        let mut wrapped = SocFloor::new(LaEdf::with_fmax(1.0), 0.5);
        assert_eq!(wrapped.frequency(&s), plain.frequency(&s));
        assert!(!wrapped.conserving(&s));
    }

    #[test]
    fn transparent_above_the_threshold() {
        let mut s = released_state();
        s.set_battery_view(Some(view(0.9)));
        let mut plain = LaEdf::with_fmax(1.0);
        let mut wrapped = SocFloor::new(LaEdf::with_fmax(1.0), 0.5);
        assert_eq!(wrapped.frequency(&s), plain.frequency(&s));
    }

    #[test]
    fn floors_at_static_utilization_below_the_threshold() {
        let mut s = released_state();
        let mut plain = LaEdf::with_fmax(1.0);
        let dip = plain.frequency(&s);
        assert!(dip < 1.0 - 1e-9, "laEDF must actually dip for this test to bite: {dip}");
        s.set_battery_view(Some(view(0.2)));
        let mut wrapped = SocFloor::new(LaEdf::with_fmax(1.0), 0.5);
        assert!(wrapped.conserving(&s));
        let f = wrapped.frequency(&s);
        assert!((f - s.static_utilization_hz()).abs() < 1e-12, "floored to U: {f}");
        assert!(f > dip, "the same state must now draw a different decision");
    }

    #[test]
    fn never_lowers_the_inner_request() {
        // When the inner governor already asks for more than the floor
        // (e.g. a deadline crunch), the wrap must not reduce it.
        struct Hot;
        impl FrequencyGovernor for Hot {
            fn name(&self) -> &'static str {
                "hot"
            }
            fn frequency(&mut self, _: &SimState) -> f64 {
                2.5
            }
        }
        let mut s = released_state();
        s.set_battery_view(Some(view(0.1)));
        let mut wrapped = SocFloor::new(Hot, 0.5);
        assert_eq!(wrapped.frequency(&s), 2.5);
    }

    #[test]
    #[should_panic(expected = "capacity fraction")]
    fn rejects_out_of_range_thresholds() {
        let _ = SocFloor::new(LaEdf::with_fmax(1.0), 1.5);
    }
}
