//! Look-ahead EDF (Pillai & Shin), extended to task graphs.
//!
//! Where ccEDF spreads the *remaining worst case* evenly, laEDF "aggressively
//! reduces processor frequency by estimating the minimum amount of work that
//! needs to be completed by the next deadline while ensuring all subsequent
//! deadlines" (§2). Work is deferred past the earliest deadline `d_n` as far
//! as later deadlines allow; only the un-deferrable remainder `s` must run
//! before `d_n`, at `fref = s / (d_n − now)`.
//!
//! Pillai & Shin's `defer()` adapted to graphs (each graph is one deferrable
//! unit, with `c_left_i` its remaining worst-case cycles and `d_i` its
//! current — or, when between instances, upcoming — absolute deadline):
//!
//! ```text
//! U = Σ Ci/Ti                       (static, cycles/s)
//! s = 0
//! for τi in reverse-EDF order (latest deadline first):
//!     U = U − Ci/Ti
//!     x = max(0, c_left_i − (fmax − U)·(d_i − d_n))
//!     if d_i > d_n: U = U + (c_left_i − x)/(d_i − d_n)
//!     s = s + x
//! fref = s / (d_n − now)
//! ```
//!
//! The governor needs `fmax` (the deferral headroom is whatever the
//! processor can still give later), so it is constructed with it.

use bas_sim::{FrequencyGovernor, SimState};
use bas_taskgraph::GraphId;

/// Look-ahead EDF governor.
///
/// The deadline order it defers against and the per-graph `Ci/Ti` quotients
/// are cached between consults — the order stamped against the state's
/// [`SimState::epoch`] (deadlines move only at releases, abandons and
/// instance completions), the quotients against the ambient PE scope (they
/// are static per scope). `c_left` is re-read fresh on every consult, so the
/// governor still tracks progress continuously. Bind a fresh instance per
/// simulation: the stamps are only meaningful against one state's counters.
#[derive(Debug, Clone)]
pub struct LaEdf {
    /// Processor peak frequency in Hz; deferral assumes later work can run at
    /// up to this speed. Set automatically from the first observed state when
    /// constructed via [`LaEdf::default`] is impossible — pass it explicitly.
    fmax: f64,
    /// Every graph with its (current or upcoming) absolute deadline, in
    /// reverse-EDF order; valid while `order_epoch` matches the state's.
    order: Vec<(GraphId, f64)>,
    order_epoch: Option<u64>,
    /// Per-graph `Ci/Ti` in Hz (graph-index order), under `quot_scope`.
    quot: Vec<f64>,
    quot_scope: Option<Option<usize>>,
}

impl LaEdf {
    /// Governor for a processor with the given peak frequency (Hz).
    ///
    /// # Panics
    /// Panics unless `fmax` is positive and finite.
    pub fn with_fmax(fmax: f64) -> Self {
        assert!(fmax.is_finite() && fmax > 0.0, "fmax must be positive");
        LaEdf { fmax, order: Vec::new(), order_epoch: None, quot: Vec::new(), quot_scope: None }
    }

    /// Governor for the paper's 1 GHz processor.
    pub fn paper() -> Self {
        LaEdf::with_fmax(1.0e9)
    }
}

impl Default for LaEdf {
    /// Defaults to the dimensionless unit processor (`fmax = 1`).
    fn default() -> Self {
        LaEdf::with_fmax(1.0)
    }
}

impl FrequencyGovernor for LaEdf {
    fn name(&self) -> &'static str {
        "laEDF"
    }

    fn frequency(&mut self, state: &SimState) -> f64 {
        let now = state.now();
        // Deadline of the most imminent *active* graph; nothing active means
        // nothing to run before the next release.
        let Some(d_n) = state.most_imminent().and_then(|g| state.deadline(g)) else {
            return 0.0;
        };
        let window = (d_n - now).max(1e-12);

        // Gather every graph with its (current or upcoming) deadline, in
        // reverse EDF order: latest deadline first. Deadlines only move when
        // the active-instance set changes, so the gathered order is reused
        // until the state's epoch ticks. Distinct graph ids make the
        // comparator a strict total order, so the unstable sort (no
        // temporary buffer) permutes exactly like the stable one.
        if self.order_epoch != Some(state.epoch()) {
            self.order.clear();
            for (gid, pg) in state.set().iter() {
                let deadline = if state.is_active(gid) {
                    state.deadline(gid).expect("active")
                } else {
                    // Next instance's deadline; no work owed before it arrives.
                    state.next_release(gid) + pg.period()
                };
                self.order.push((gid, deadline));
            }
            self.order.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1).expect("finite").then(b.0.cmp(&a.0))
            });
            self.order_epoch = Some(state.epoch());
        }
        // Scope-aware: on a multi-PE platform each laEDF instance defers
        // only the work mapped to its own element. The `Ci/Ti` quotients are
        // static per scope.
        if self.quot_scope != Some(state.scope()) {
            self.quot.clear();
            self.quot
                .extend(state.set().iter().map(|(gid, pg)| state.static_cycles(gid) / pg.period()));
            self.quot_scope = Some(state.scope());
        }

        let mut u: f64 = state.static_utilization_hz();
        let mut s = 0.0;
        for &(gid, d_i) in &self.order {
            // Remaining worst case, 0 when between instances — re-read
            // fresh (it shrinks with every advance, not just at events).
            let c_left = state.remaining_wc(gid);
            u -= self.quot[gid.index()];
            let room = d_i - d_n;
            if room > 1e-12 {
                // Cycles that fit between d_n and d_i if the processor gives
                // this graph all capacity beyond what earlier-deadline work
                // (still counted in U) reserves.
                let deferrable = (self.fmax - u).max(0.0) * room;
                let x = (c_left - deferrable).max(0.0);
                u += (c_left - x) / room;
                s += x;
            } else {
                // Due by d_n itself: nothing can be deferred.
                s += c_left;
            }
        }
        s / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccedf::CcEdf;
    use bas_sim::TaskRef;
    use bas_taskgraph::{GraphId, NodeId, PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn gid(i: usize) -> GraphId {
        GraphId::from_index(i)
    }

    fn single(wc: u64, period: f64) -> PeriodicTaskGraph {
        let mut b = TaskGraphBuilder::new("T");
        b.add_node("t", wc);
        PeriodicTaskGraph::new(b.build().unwrap(), period).unwrap()
    }

    /// T0: C=1, D=4; T1: C=2, D=8 on a unit processor. Static U = 0.5.
    fn half_loaded() -> SimState {
        let mut set = TaskSet::new();
        set.push(single(1, 4.0));
        set.push(single(2, 8.0));
        SimState::new(set)
    }

    #[test]
    fn laedf_defers_later_deadline_work() {
        let mut s = half_loaded();
        s.release(gid(0), vec![1.0]);
        s.release(gid(1), vec![2.0]);
        s.refresh_edf();
        let mut la = LaEdf::with_fmax(1.0);
        let mut cc = CcEdf;
        // ccEDF spreads everything: U = 1/4 + 2/8 = 0.5.
        assert!((cc.frequency(&s) - 0.5).abs() < 1e-12);
        // laEDF: T1's 2 cycles fit entirely into [4, 8] at (1 − 0.25)·4 = 3
        // available cycles, so only T0's 1 cycle is due by t = 4:
        // fref = 1/4 = 0.25.
        assert!((la.frequency(&s) - 0.25).abs() < 1e-12, "{}", la.frequency(&s));
    }

    #[test]
    fn laedf_equals_ccedf_at_full_utilization() {
        let mut set = TaskSet::new();
        set.push(single(2, 4.0));
        set.push(single(4, 8.0));
        let mut s = SimState::new(set);
        s.release(gid(0), vec![2.0]);
        s.release(gid(1), vec![4.0]);
        s.refresh_edf();
        let mut la = LaEdf::with_fmax(1.0);
        // U = 1: nothing can be deferred, s = 2 (T0) + 2 (T1's undeferrable
        // part: 4 − (1−0.5)·4 = 2) -> fref = 4/4 = 1.
        assert!((la.frequency(&s) - 1.0).abs() < 1e-12, "{}", la.frequency(&s));
    }

    #[test]
    fn laedf_accounts_for_partial_progress() {
        let mut s = half_loaded();
        s.release(gid(0), vec![1.0]);
        s.release(gid(1), vec![2.0]);
        s.refresh_edf();
        // Run T0 to completion: only T1's deferred work remains.
        s.advance(TaskRef::new(gid(0), NodeId::from_index(0)), 1.0);
        s.refresh_edf();
        let mut la = LaEdf::with_fmax(1.0);
        // Now d_n = 8 (T1); T1's 2 cycles due by then from t=0: any deferral
        // window is gone, s = 2, window = 8 -> 0.25.
        assert!((la.frequency(&s) - 0.25).abs() < 1e-12, "{}", la.frequency(&s));
    }

    #[test]
    fn laedf_with_nothing_active_asks_for_zero() {
        let mut s = half_loaded();
        s.refresh_edf();
        let mut la = LaEdf::with_fmax(1.0);
        assert_eq!(la.frequency(&s), 0.0);
    }

    #[test]
    fn laedf_never_exceeds_fmax_on_feasible_sets() {
        // Several random-ish feasible configurations; laEDF must stay ≤ fmax.
        for (wcs, periods) in [
            (vec![3u64, 5, 2], vec![10.0, 20.0, 8.0]),
            (vec![1, 1, 1, 1], vec![4.0, 5.0, 6.0, 7.0]),
            (vec![7, 3], vec![10.0, 10.0]),
        ] {
            let mut set = TaskSet::new();
            for (w, p) in wcs.iter().zip(&periods) {
                set.push(single(*w, *p));
            }
            assert!(set.utilization(1.0) <= 1.0 + 1e-9);
            let mut s = SimState::new(set);
            for (i, &wc) in wcs.iter().enumerate() {
                s.release(gid(i), vec![wc as f64]);
            }
            s.refresh_edf();
            let mut la = LaEdf::with_fmax(1.0);
            let f = la.frequency(&s);
            assert!(f <= 1.0 + 1e-9, "fref {f} exceeds fmax");
            assert!(f >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "fmax must be positive")]
    fn invalid_fmax_panics() {
        LaEdf::with_fmax(0.0);
    }
}
