//! Per-PE governor instances — the [`GovernorBank`].
//!
//! On a multi-PE platform every processing element runs its **own** DVS
//! governor instance: laEDF's deferral scratch, SocFloor's threshold state
//! and any learned history must not leak between elements, and each
//! instance is constructed against its PE's own `fmax`. A [`GovernorBank`]
//! owns one boxed governor per PE, index-aligned with the platform, and
//! lends them to the engine as the `Vec<&mut dyn FrequencyGovernor>` that
//! `bas_sim::Simulation::with_platform` consumes.
//!
//! The engine consults each instance with the ambient PE scope set on the
//! state (see `bas_sim::SimState::scope`), so the governors in this crate
//! steer their own element without any multi-PE awareness of their own.

use bas_sim::FrequencyGovernor;

/// One governor instance per processing element, index-aligned with the
/// platform.
pub struct GovernorBank {
    governors: Vec<Box<dyn FrequencyGovernor>>,
}

impl GovernorBank {
    /// A bank from explicit per-PE instances (possibly heterogeneous —
    /// nothing requires every PE to run the same algorithm).
    ///
    /// # Panics
    /// Panics when `governors` is empty.
    pub fn new(governors: Vec<Box<dyn FrequencyGovernor>>) -> Self {
        assert!(!governors.is_empty(), "a bank needs at least one governor");
        GovernorBank { governors }
    }

    /// `n` instances built by `factory` (called with the PE index) — the
    /// homogeneous lineup, e.g.
    /// `GovernorBank::uniform(4, |_| Box::new(CcEdf))`.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn uniform(n: usize, factory: impl Fn(usize) -> Box<dyn FrequencyGovernor>) -> Self {
        assert!(n > 0, "a bank needs at least one governor");
        GovernorBank { governors: (0..n).map(factory).collect() }
    }

    /// A bank of the named governor (see [`crate::governor_by_name`]), one
    /// instance per entry of `fmax_per_pe` (each constructed against its
    /// PE's peak frequency). Returns `None` for unknown names or an empty
    /// slice.
    pub fn by_name(name: &str, fmax_per_pe: &[f64]) -> Option<Self> {
        if fmax_per_pe.is_empty() {
            return None;
        }
        let governors: Option<Vec<_>> =
            fmax_per_pe.iter().map(|&fmax| crate::governor_by_name(name, fmax)).collect();
        governors.map(|governors| GovernorBank { governors })
    }

    /// Number of per-PE instances.
    pub fn len(&self) -> usize {
        self.governors.len()
    }

    /// Always false — construction guarantees at least one instance.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// One instance, immutably.
    pub fn get(&self, pe: usize) -> &dyn FrequencyGovernor {
        self.governors[pe].as_ref()
    }

    /// Lend the instances to an engine:
    /// `Simulation::with_platform(…, bank.as_muts(), …)`.
    pub fn as_muts(&mut self) -> Vec<&mut (dyn FrequencyGovernor + '_)> {
        self.governors
            .iter_mut()
            .map(|g| -> &mut (dyn FrequencyGovernor + '_) { g.as_mut() })
            .collect()
    }
}

impl std::fmt::Debug for GovernorBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.governors.iter().map(|g| g.name())).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CcEdf, LaEdf};

    #[test]
    fn uniform_builds_one_instance_per_pe() {
        let bank = GovernorBank::uniform(3, |_| Box::new(CcEdf));
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
        assert_eq!(bank.get(2).name(), "ccEDF");
    }

    #[test]
    fn by_name_constructs_against_per_pe_fmax() {
        let bank = GovernorBank::by_name("laEDF", &[1.0, 2.0]).unwrap();
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.get(0).name(), "laEDF");
        assert!(GovernorBank::by_name("bogus", &[1.0]).is_none());
        assert!(GovernorBank::by_name("laEDF", &[]).is_none());
    }

    #[test]
    fn as_muts_is_index_aligned() {
        let mut bank = GovernorBank::new(vec![Box::new(CcEdf), Box::new(LaEdf::with_fmax(1.0))]);
        let muts = bank.as_muts();
        assert_eq!(muts.len(), 2);
        assert_eq!(muts[0].name(), "ccEDF");
        assert_eq!(muts[1].name(), "laEDF");
    }

    #[test]
    fn debug_lists_names() {
        let bank = GovernorBank::uniform(2, |_| Box::new(CcEdf));
        assert_eq!(format!("{bank:?}"), "[\"ccEDF\", \"ccEDF\"]");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_bank_panics() {
        let _ = GovernorBank::new(Vec::new());
    }
}
