//! # bas-dvs — DVS frequency governors
//!
//! The "global frequency selection" half of the paper's methodology (§4.1):
//! EDF-based dynamic voltage scaling algorithms that return the minimum
//! reference frequency `fref` guaranteeing all future deadlines. All three
//! governors of the paper's evaluation are here, extended from independent
//! periodic tasks (Pillai & Shin, SOSP 2001 — the paper's \[10\]) to periodic
//! task *graphs* exactly as §4.1 prescribes: a graph's worst case is
//! `WCi = Σ wcij`, updated to the actual `acij` as each node completes, and
//! reverting to the worst case at the next release.
//!
//! * [`NoDvs`] — always `fmax` (Table 2's "EDF, no DVS" row);
//! * [`CcEdf`] — cycle-conserving EDF: `fref = Σ WCi(effective)/Di`;
//! * [`LaEdf`] — look-ahead EDF: defers work past the earliest deadline as
//!   far as subsequent deadlines allow, running as slowly as possible now;
//! * [`SocFloor`] — the battery-aware wrap: runs an inner governor while the
//!   engine's [`bas_sim::BatteryView`] reports a comfortable state of
//!   charge, and floors `fref` at the flat static-utilization rate once it
//!   drops below a threshold (canonically `socEDF` = `SocFloor<LaEdf>`);
//! * [`KvEdf`] — the Khan–Vemuri iterative battery-aware governor: walks a
//!   candidate grid between laEDF's feasible floor and the flat
//!   static-utilization ceiling, accepting slowdown notches while a
//!   state-of-charge–weighted battery cost improves (`kvEDF`).
//!
//! Governors return Hz (cycles per second); the engine clamps into the
//! processor's range and realizes the value on discrete operating points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod ccedf;
pub mod kv;
pub mod laedf;
pub mod nodvs;
pub mod soc;
pub mod static_util;

pub use bank::GovernorBank;
pub use ccedf::CcEdf;
pub use kv::{KvEdf, DEFAULT_KV_NOTCHES};
pub use laedf::LaEdf;
pub use nodvs::NoDvs;
pub use soc::{SocFloor, DEFAULT_SOC_THRESHOLD};
pub use static_util::StaticUtilization;

use bas_sim::FrequencyGovernor;

/// Governor lookup by name (`"none"`, `"static"`, `"ccEDF"`, `"laEDF"`,
/// `"socEDF"`, `"kvEDF"`). `fmax` is the processor peak frequency in Hz,
/// which laEDF's deferral math needs. Returns `None` for unknown names.
pub fn governor_by_name(name: &str, fmax: f64) -> Option<Box<dyn FrequencyGovernor>> {
    match name {
        "none" => Some(Box::new(NoDvs)),
        "static" => Some(Box::new(StaticUtilization)),
        "ccEDF" => Some(Box::new(CcEdf)),
        "laEDF" => Some(Box::new(LaEdf::with_fmax(fmax))),
        "socEDF" => Some(Box::new(SocFloor::with_default_threshold(LaEdf::with_fmax(fmax)))),
        "kvEDF" => Some(Box::new(KvEdf::with_fmax(fmax))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_finds_every_governor() {
        assert_eq!(governor_by_name("none", 1.0).unwrap().name(), "none(fmax)");
        assert_eq!(governor_by_name("static", 1.0).unwrap().name(), "static-EDF");
        assert_eq!(governor_by_name("ccEDF", 1.0).unwrap().name(), "ccEDF");
        assert_eq!(governor_by_name("laEDF", 1.0).unwrap().name(), "laEDF");
        assert_eq!(governor_by_name("socEDF", 1.0).unwrap().name(), "socEDF");
        assert_eq!(governor_by_name("kvEDF", 1.0).unwrap().name(), "kvEDF");
        assert!(governor_by_name("bogus", 1.0).is_none());
    }
}
