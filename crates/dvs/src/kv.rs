//! Khan–Vemuri iterative battery-aware EDF.
//!
//! "An Iterative Algorithm for Battery-Aware Task Scheduling on Portable
//! Computing Platforms" (Khan & Vemuri, DATE 2005) schedules a task set by
//! starting from a feasible voltage assignment and *iteratively* re-assigning
//! slack one greedy step at a time, accepting each step only while a battery
//! cost function improves. [`KvEdf`] collapses that offline loop into the
//! online frequency domain the engine exposes:
//!
//! * the **feasible floor** is laEDF's minimal rate `f_la` — the least work
//!   that must run before the earliest deadline (running *faster* than a
//!   feasible governor's request can never introduce a miss, so the floor
//!   carries laEDF's miss-freedom unconditionally);
//! * the **even ceiling** is the flat static-utilization rate
//!   `f_hi = max(f_la, Σ WCi/Di)` — the smoothest constant-current schedule
//!   (the paper's §3 guideline G1: batteries prefer flat shapes);
//! * each decision walks the `notches + 1` evenly spaced candidates in
//!   `[f_la, f_hi]` from the ceiling downward — the discrete voltage levels
//!   of the offline algorithm — accepting one slowdown notch per iteration
//!   while the battery cost
//!
//!   ```text
//!   C(f) = (f / fmax)² + β(soc) · ((f_hi − f) / fmax)²
//!   β(soc) = (1 − soc) / max(soc, 0.05)
//!   ```
//!
//!   strictly improves, and stopping at the first notch that does not.
//!
//! The first term is the cost of running *now* (dynamic energy per cycle
//! grows ≈ quadratically with frequency); the second charges the deferred
//! work for the high-current sprint it sets up later, weighted by the
//! rate-capacity pressure `β`: a full battery (`soc = 1`, `β = 0`) tolerates
//! spikes, so the walk reaches the floor and `KvEdf` *is* laEDF; a drained
//! battery makes deferral expensive and the walk stops near the flat rate.
//! Without a mounted battery the governor is transparent (pure laEDF), which
//! keeps it safe in any lineup.
//!
//! Where [`SocFloor`](crate::SocFloor) switches between the same two anchors
//! with a hard threshold, `KvEdf` interpolates between them continuously —
//! and picks the operating point by cost descent rather than by rule.

use crate::laedf::LaEdf;
use bas_sim::{FrequencyGovernor, SimState};
use bas_taskgraph::GraphId;

/// Default number of slowdown notches between the even ceiling and the
/// feasible floor (the candidate grid has `notches + 1` points).
pub const DEFAULT_KV_NOTCHES: usize = 16;

/// State-of-charge floor inside `β(soc) = (1 − soc) / max(soc, ε)` — keeps
/// the deferral penalty finite as the battery approaches exhaustion.
const MIN_SOC: f64 = 0.05;

/// Khan–Vemuri iterative battery-aware EDF governor.
#[derive(Debug, Clone)]
pub struct KvEdf {
    la: LaEdf,
    fmax: f64,
    notches: usize,
}

impl KvEdf {
    /// Governor for a processor with the given peak frequency (Hz), using
    /// [`DEFAULT_KV_NOTCHES`] candidate slowdown steps.
    ///
    /// # Panics
    /// Panics unless `fmax` is positive and finite.
    pub fn with_fmax(fmax: f64) -> Self {
        KvEdf::with_notches(fmax, DEFAULT_KV_NOTCHES)
    }

    /// Governor with an explicit candidate-grid resolution.
    ///
    /// # Panics
    /// Panics unless `fmax` is positive and finite and `notches > 0`.
    pub fn with_notches(fmax: f64, notches: usize) -> Self {
        assert!(fmax.is_finite() && fmax > 0.0, "fmax must be positive");
        assert!(notches > 0, "need at least one slowdown notch");
        KvEdf { la: LaEdf::with_fmax(fmax), fmax, notches }
    }

    /// The rate-capacity pressure for `state`: 0 without a battery or at
    /// full charge, growing as the state of charge falls.
    fn beta(state: &SimState) -> f64 {
        match state.battery() {
            None => 0.0,
            Some(b) => {
                let soc = b.state_of_charge.clamp(0.0, 1.0);
                (1.0 - soc) / soc.max(MIN_SOC)
            }
        }
    }

    /// The battery cost of running at `f` when the even ceiling is `f_hi`.
    fn cost(&self, f: f64, f_hi: f64, beta: f64) -> f64 {
        let run = f / self.fmax;
        let deferred = (f_hi - f) / self.fmax;
        run * run + beta * deferred * deferred
    }
}

impl FrequencyGovernor for KvEdf {
    fn name(&self) -> &'static str {
        "kvEDF"
    }

    fn frequency(&mut self, state: &SimState) -> f64 {
        let f_la = self.la.frequency(state);
        let f_hi = f_la.max(state.static_utilization_hz());
        let delta = f_hi - f_la;
        if delta <= 1e-12 * self.fmax {
            return f_la;
        }
        let beta = Self::beta(state);
        // Iterative greedy descent from the even ceiling: accept one notch
        // of slowdown per iteration while the cost strictly improves.
        let step = delta / self.notches as f64;
        let mut best = f_hi;
        let mut best_cost = self.cost(best, f_hi, beta);
        for i in 1..=self.notches {
            let candidate = f_hi - step * i as f64;
            let cost = self.cost(candidate, f_hi, beta);
            if cost < best_cost {
                best = candidate;
                best_cost = cost;
            } else {
                break;
            }
        }
        // The last notch is exactly the floor up to rounding; snap it.
        if (best - f_la).abs() <= 1e-12 * self.fmax {
            f_la
        } else {
            best
        }
    }

    fn on_release(&mut self, state: &SimState, graph: GraphId) {
        self.la.on_release(state, graph);
    }

    fn on_completion(&mut self, state: &SimState, task: bas_sim::TaskRef, actual: f64) {
        self.la.on_completion(state, task, actual);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sim::BatteryView;
    use bas_taskgraph::{GraphId, PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn state() -> SimState {
        // T0: 6 cycles / D 12; T1: 3 cycles / D 6. Static U = 1.0.
        let mut set = TaskSet::new();
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("a", 6);
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 12.0).unwrap());
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("b", 3);
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 6.0).unwrap());
        SimState::new(set)
    }

    fn view(soc: f64) -> BatteryView {
        BatteryView { state_of_charge: soc, charge_delivered: 0.0, exhausted: false }
    }

    /// Only T0 released early in its window: laEDF dips well below the
    /// static utilization, opening a real `[f_la, f_hi]` interval.
    fn released_state() -> SimState {
        let mut s = state();
        s.release(GraphId::from_index(0), vec![6.0]);
        s.refresh_edf();
        s
    }

    #[test]
    fn transparent_without_a_battery() {
        let mut s = released_state();
        s.set_battery_view(None);
        let mut plain = LaEdf::with_fmax(1.0);
        let mut kv = KvEdf::with_fmax(1.0);
        assert_eq!(kv.frequency(&s), plain.frequency(&s));
    }

    #[test]
    fn full_battery_matches_laedf() {
        let mut s = released_state();
        s.set_battery_view(Some(view(1.0)));
        let mut plain = LaEdf::with_fmax(1.0);
        let mut kv = KvEdf::with_fmax(1.0);
        assert_eq!(kv.frequency(&s), plain.frequency(&s));
    }

    #[test]
    fn drained_battery_pulls_toward_the_flat_rate() {
        let mut s = released_state();
        let f_la = LaEdf::with_fmax(1.0).frequency(&s);
        let f_hi = s.static_utilization_hz();
        assert!(f_la < f_hi - 1e-9, "interval must be open for this test: {f_la} vs {f_hi}");
        s.set_battery_view(Some(view(0.1)));
        let mut kv = KvEdf::with_fmax(1.0);
        let f = kv.frequency(&s);
        assert!(f > f_la + 1e-12, "strained battery must lift the dip: {f}");
        assert!(f <= f_hi + 1e-12, "never above the even ceiling: {f}");
    }

    #[test]
    fn never_below_the_feasible_floor() {
        for soc in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let mut s = released_state();
            s.set_battery_view(Some(view(soc)));
            let f_la = LaEdf::with_fmax(1.0).frequency(&s);
            let mut kv = KvEdf::with_fmax(1.0);
            assert!(kv.frequency(&s) >= f_la - 1e-12, "soc {soc}");
        }
    }

    #[test]
    fn frequency_rises_monotonically_as_the_battery_drains() {
        let mut prev = -1.0;
        for soc in [1.0, 0.8, 0.6, 0.4, 0.2, 0.05] {
            let mut s = released_state();
            s.set_battery_view(Some(view(soc)));
            let mut kv = KvEdf::with_fmax(1.0);
            let f = kv.frequency(&s);
            assert!(f >= prev - 1e-12, "soc {soc}: {f} < {prev}");
            prev = f;
        }
    }

    #[test]
    fn greedy_walk_finds_the_grid_minimum() {
        // The cost is convex in f, so the first-non-improving stop of the
        // greedy walk must equal the brute-force best over the whole grid.
        for soc in [0.15, 0.4, 0.75] {
            let mut s = released_state();
            s.set_battery_view(Some(view(soc)));
            let mut kv = KvEdf::with_fmax(1.0);
            let chosen = kv.frequency(&s);
            let f_la = LaEdf::with_fmax(1.0).frequency(&s);
            let f_hi = f_la.max(s.static_utilization_hz());
            let beta = KvEdf::beta(&s);
            let brute = (0..=DEFAULT_KV_NOTCHES)
                .map(|i| f_hi - (f_hi - f_la) * i as f64 / DEFAULT_KV_NOTCHES as f64)
                .min_by(|a, b| {
                    kv.cost(*a, f_hi, beta).partial_cmp(&kv.cost(*b, f_hi, beta)).unwrap()
                })
                .unwrap();
            assert!((chosen - brute).abs() < 1e-12, "soc {soc}: {chosen} vs {brute}");
        }
    }

    #[test]
    #[should_panic(expected = "fmax must be positive")]
    fn invalid_fmax_panics() {
        let _ = KvEdf::with_fmax(f64::NAN);
    }
}
