//! The no-DVS baseline: always run at peak frequency.
//!
//! There is exactly **one** implementation of this governor in the
//! workspace — [`bas_sim::MaxSpeed`] — re-exported here under the name the
//! DVS layer and the paper's Table 2 use. It lives in `bas-sim` (not here)
//! because the executor's own tests need a governor below `bas-dvs` in the
//! dependency tree; keeping a second copy in this crate invited drift, so
//! the alias replaced it.

/// Always request `fmax` (the executor clamps `∞` down to it). This is the
/// "EDF / None" row of the paper's Table 2: energy-oblivious scheduling that
/// finishes everything early and idles.
///
/// Alias of [`bas_sim::MaxSpeed`] — see the module docs for why the type
/// is defined there.
pub use bas_sim::MaxSpeed as NoDvs;

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sim::{FrequencyGovernor, SimState};
    use bas_taskgraph::TaskSet;

    #[test]
    fn requests_infinite_frequency() {
        let mut g = NoDvs;
        let state = SimState::new(TaskSet::new());
        assert_eq!(g.frequency(&state), f64::INFINITY);
    }

    #[test]
    fn nodvs_is_the_canonical_max_speed() {
        // The two names must be the same type (no drift possible).
        fn same_type(_: &NoDvs, _: &bas_sim::MaxSpeed) {}
        same_type(&NoDvs, &bas_sim::MaxSpeed);
        assert_eq!(NoDvs.name(), "none(fmax)");
    }
}
