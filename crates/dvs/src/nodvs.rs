//! The no-DVS baseline: always run at peak frequency.

use bas_sim::{FrequencyGovernor, SimState};

/// Always request `fmax` (the executor clamps `∞` down to it). This is the
/// "EDF / None" row of the paper's Table 2: energy-oblivious scheduling that
/// finishes everything early and idles.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDvs;

impl FrequencyGovernor for NoDvs {
    fn name(&self) -> &'static str {
        "none(fmax)"
    }

    fn frequency(&mut self, _state: &SimState) -> f64 {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::TaskSet;

    #[test]
    fn requests_infinite_frequency() {
        let mut g = NoDvs;
        let state = SimState::new(TaskSet::new());
        assert_eq!(g.frequency(&state), f64::INFINITY);
    }
}
