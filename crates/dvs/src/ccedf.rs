//! Cycle-conserving EDF (Pillai & Shin), extended to task graphs (§4.1).
//!
//! The algorithm is the paper's Algorithm 1 verbatim:
//!
//! ```text
//! upon release(Ti):        WCi = Σ wcij;              select_frequency()
//! upon endofnode(Ti, τij): WCi = WCi + acij − wcij;   select_frequency()
//! select_frequency():      U = Σ WCi/Di; fref = U · fmax
//! ```
//!
//! `bas-sim` maintains `WCi` (the "effective WCi") with exactly these
//! updates, so the governor itself is a stateless read of
//! [`SimState::effective_utilization_hz`] — with cycles in the numerator and
//! seconds in the denominator the sum *is* the frequency in Hz, which equals
//! the paper's `U · fmax` in its normalized units.

use bas_sim::{FrequencyGovernor, SimState};

/// Cycle-conserving EDF governor.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcEdf;

impl FrequencyGovernor for CcEdf {
    fn name(&self) -> &'static str {
        "ccEDF"
    }

    fn frequency(&mut self, state: &SimState) -> f64 {
        state.effective_utilization_hz()
    }

    fn event_driven(&self) -> bool {
        // `Σ WCi/Di` changes only at releases, abandons and completions —
        // exactly the events the engine's consult cache is keyed on.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_sim::TaskRef;
    use bas_taskgraph::{GraphId, NodeId, PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn gid(i: usize) -> GraphId {
        GraphId::from_index(i)
    }

    /// T0: a(4), b(6) chain, D = 20; T1: c(5), D = 10. Static U = 1.0 Hz.
    fn state() -> SimState {
        let mut b = TaskGraphBuilder::new("T0");
        let a = b.add_node("a", 4);
        let c = b.add_node("b", 6);
        b.add_edge(a, c).unwrap();
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("c", 5);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap();
        let mut set = TaskSet::new();
        set.push(g0);
        set.push(g1);
        SimState::new(set)
    }

    #[test]
    fn frequency_equals_static_utilization_at_release() {
        let mut s = state();
        s.release(gid(0), vec![4.0, 6.0]);
        s.release(gid(1), vec![5.0]);
        s.refresh_edf();
        let mut g = CcEdf;
        assert!((g.frequency(&s) - 1.0).abs() < 1e-12, "10/20 + 5/10");
    }

    #[test]
    fn early_completion_lowers_frequency() {
        let mut s = state();
        s.release(gid(0), vec![2.0, 6.0]); // node a actually takes 2 of 4
        s.release(gid(1), vec![5.0]);
        s.refresh_edf();
        let mut g = CcEdf;
        let before = g.frequency(&s);
        s.advance(TaskRef::new(gid(0), NodeId::from_index(0)), 2.0);
        s.refresh_edf();
        let after = g.frequency(&s);
        // WC0: 10 -> 8, so U drops from 1.0 to 8/20 + 0.5 = 0.9.
        assert!((before - 1.0).abs() < 1e-12);
        assert!((after - 0.9).abs() < 1e-12);
    }

    #[test]
    fn completed_instance_keeps_actual_until_next_release() {
        let mut s = state();
        s.release(gid(1), vec![1.0]); // actual far below wc = 5
        s.refresh_edf();
        s.advance(TaskRef::new(gid(1), NodeId::from_index(0)), 1.0);
        s.refresh_edf();
        let mut g = CcEdf;
        // §4.1: between completion and the next release WCi = Σ ac, so
        // U = 10/20 + 1/10 = 0.6 (T0 unreleased still budgets worst case).
        assert!((g.frequency(&s) - 0.6).abs() < 1e-12);
        // The next release switches back to the worst-case specification.
        s.release(gid(1), vec![5.0]);
        s.refresh_edf();
        assert!((g.frequency(&s) - 1.0).abs() < 1e-12);
    }
}
