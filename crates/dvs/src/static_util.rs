//! Static utilization-based DVS — the classical baseline between "no DVS"
//! and the dynamic reclaiming governors.
//!
//! Runs at the constant frequency `U · fmax` computed from the task set's
//! *static* worst-case utilization (Pillai & Shin call this "statically
//! scaled EDF"). It never exploits early completions, so it brackets the
//! dynamic governors from above: any reasonable ccEDF/laEDF run should use
//! no more energy than this, and the gap *is* the value of slack
//! reclamation.

use bas_sim::{FrequencyGovernor, SimState};

/// Statically scaled EDF: constant `fref = Σ WCi/Di` (worst case).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticUtilization;

impl FrequencyGovernor for StaticUtilization {
    fn name(&self) -> &'static str {
        "static-EDF"
    }

    fn frequency(&mut self, state: &SimState) -> f64 {
        state.static_utilization_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CcEdf;
    use bas_sim::TaskRef;
    use bas_taskgraph::{GraphId, NodeId, PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn state() -> SimState {
        // T0: 6 cycles / D 12; T1: 3 cycles / D 6. U = 1.0.
        let mut set = TaskSet::new();
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("a", 6);
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 12.0).unwrap());
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("b", 3);
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 6.0).unwrap());
        SimState::new(set)
    }

    #[test]
    fn frequency_is_static_worst_case_utilization() {
        let mut s = state();
        s.release(GraphId::from_index(0), vec![6.0]);
        s.release(GraphId::from_index(1), vec![3.0]);
        s.refresh_edf();
        let mut g = StaticUtilization;
        assert!((g.frequency(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_early_completions_unlike_ccedf() {
        let mut s = state();
        s.release(GraphId::from_index(0), vec![2.0]); // actual 2 of 6
        s.release(GraphId::from_index(1), vec![3.0]);
        s.refresh_edf();
        s.advance(TaskRef::new(GraphId::from_index(0), NodeId::from_index(0)), 2.0);
        s.refresh_edf();
        let mut stat = StaticUtilization;
        let mut cc = CcEdf;
        // ccEDF reclaims T0's slack; static scaling does not.
        assert!((stat.frequency(&s) - 1.0).abs() < 1e-12);
        assert!(cc.frequency(&s) < 1.0 - 1e-9);
    }

    #[test]
    fn constant_across_time_and_progress() {
        let mut s = state();
        s.release(GraphId::from_index(0), vec![6.0]);
        s.refresh_edf();
        let mut g = StaticUtilization;
        let f0 = g.frequency(&s);
        s.set_now(3.0);
        s.advance(TaskRef::new(GraphId::from_index(0), NodeId::from_index(0)), 1.0);
        s.refresh_edf();
        assert_eq!(g.frequency(&s), f0);
    }
}
