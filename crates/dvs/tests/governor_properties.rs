//! Governor-level properties, checked through live executor runs.

use bas_cpu::presets::unit_processor;
use bas_dvs::{CcEdf, LaEdf, NoDvs, SocFloor};
use bas_sim::policy::EdfTopo;
use bas_sim::{FrequencyGovernor, SimConfig, SimState, Simulation, UniformFraction};
use bas_taskgraph::{GeneratorConfig, GraphShape, TaskSetConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_set(seed: u64, graphs: usize, util: f64) -> bas_taskgraph::TaskSet {
    TaskSetConfig {
        graphs,
        graph: GeneratorConfig {
            nodes: (2, 8),
            wcet: (5, 50),
            shape: GraphShape::Layered { layers: 2, edge_prob: 0.3 },
        },
        utilization: util,
        fmax: 1.0,
        period_quantum: None,
    }
    .generate(&mut StdRng::seed_from_u64(seed))
    .unwrap()
}

fn run(governor: &mut dyn FrequencyGovernor, seed: u64, util: f64) -> bas_sim::Metrics {
    let set = random_set(seed, 3, util);
    let horizon = 1.5 * set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max);
    let mut policy = EdfTopo;
    let mut sampler = UniformFraction::paper(seed);
    let mut cfg = SimConfig::new(unit_processor());
    cfg.record_trace = false;
    let mut sim = Simulation::new(set, cfg, governor, &mut policy, &mut sampler).unwrap();
    sim.run_until(horizon).unwrap();
    sim.finish().metrics
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_governor_ever_misses_deadlines(
        seed in 0u64..3_000,
        util in 0.2f64..0.95,
        which in 0usize..4,
    ) {
        let mut governors: Vec<Box<dyn FrequencyGovernor>> = vec![
            Box::new(NoDvs),
            Box::new(CcEdf),
            Box::new(LaEdf::with_fmax(1.0)),
            Box::new(SocFloor::with_default_threshold(LaEdf::with_fmax(1.0))),
        ];
        let m = run(governors[which].as_mut(), seed, util);
        prop_assert_eq!(m.deadline_misses, 0);
    }

    #[test]
    fn dvs_governors_save_energy_over_no_dvs(
        seed in 0u64..3_000,
        util in 0.3f64..0.9,
    ) {
        let e_none = run(&mut NoDvs, seed, util).energy;
        let e_cc = run(&mut CcEdf, seed, util).energy;
        let e_la = run(&mut LaEdf::with_fmax(1.0), seed, util).energy;
        prop_assert!(e_cc <= e_none + 1e-9);
        prop_assert!(e_la <= e_none + 1e-9);
    }

    #[test]
    fn laedf_request_never_exceeds_ccedf_at_release_instants(
        seed in 0u64..3_000,
        util in 0.2f64..0.95,
    ) {
        // At a synchronized release with no progress yet, laEDF's deferral
        // can only lower the request relative to ccEDF's utilization spread.
        let set = random_set(seed, 3, util);
        let mut state = SimState::new(set);
        for gid in state.set().graph_ids().collect::<Vec<_>>() {
            let actuals: Vec<f64> = state.set()[gid]
                .graph()
                .node_ids()
                .map(|n| state.set()[gid].graph().wcet(n) as f64)
                .collect();
            state.release(gid, actuals);
        }
        state.refresh_edf();
        let f_cc = CcEdf.frequency(&state);
        let f_la = LaEdf::with_fmax(1.0).frequency(&state);
        prop_assert!(
            f_la <= f_cc + 1e-9,
            "laEDF {f_la} must not exceed ccEDF {f_cc} at synchronized release"
        );
    }
}

/// Run `governor` against a mounted ideal battery of `capacity` coulombs and
/// return the outcome (metrics + battery report).
fn run_with_battery(
    governor: &mut dyn FrequencyGovernor,
    capacity: f64,
    seed: u64,
) -> bas_sim::SimOutcome {
    let set = random_set(seed, 3, 0.7);
    let horizon = 1.5 * set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max);
    let mut policy = EdfTopo;
    let mut sampler = UniformFraction::paper(seed);
    let mut cfg = SimConfig::new(unit_processor());
    cfg.record_trace = false;
    let mut battery = bas_battery::IdealModel::new(capacity);
    let mut sim = Simulation::new(set, cfg, governor, &mut policy, &mut sampler).unwrap();
    sim.mount_battery(&mut battery);
    sim.run_until(horizon).unwrap();
    sim.finish()
}

#[test]
fn soc_floor_changes_decisions_exactly_when_the_battery_runs_low() {
    let seed = 11;
    // Size the cell from a reference run: 1.6× the consumed charge means the
    // state of charge ends near 0.375 — crossing the 0.5 threshold mid-run
    // without ever exhausting.
    let reference = run_with_battery(&mut LaEdf::with_fmax(1.0), 1e9, seed);
    let capacity = 1.6 * reference.metrics.charge;

    // A comfortable battery (SoC never near 0.5): the wrap is transparent.
    let comfy_plain = run_with_battery(&mut LaEdf::with_fmax(1.0), 100.0 * capacity, seed);
    let comfy_wrapped = run_with_battery(
        &mut SocFloor::with_default_threshold(LaEdf::with_fmax(1.0)),
        100.0 * capacity,
        seed,
    );
    assert_eq!(comfy_plain.metrics, comfy_wrapped.metrics, "transparent above the threshold");

    // A strained battery: once SoC crosses 0.5 the floor engages and the
    // schedule provably diverges — frequency decisions now depend on the
    // state of charge.
    let strained_plain = run_with_battery(&mut LaEdf::with_fmax(1.0), capacity, seed);
    let strained_wrapped = run_with_battery(
        &mut SocFloor::with_default_threshold(LaEdf::with_fmax(1.0)),
        capacity,
        seed,
    );
    assert_eq!(strained_plain.metrics.deadline_misses, 0);
    assert_eq!(strained_wrapped.metrics.deadline_misses, 0);
    assert!(!strained_wrapped.battery.as_ref().unwrap().died, "floor must not kill the cell");
    assert!(
        strained_wrapped.metrics.energy != strained_plain.metrics.energy
            || strained_wrapped.metrics.decisions != strained_plain.metrics.decisions,
        "low state of charge must change the schedule: {:?} vs {:?}",
        strained_wrapped.metrics,
        strained_plain.metrics
    );
}
