//! The typed event stream a [`crate::Simulation`] emits.
//!
//! Every state transition of the engine is narrated as a [`SimEvent`], and
//! every stretch of constant processor behaviour as a [`SliceInfo`]; both are
//! fanned out to the attached [`crate::SimObserver`]s. The built-in
//! [`crate::TraceRecorder`] and [`crate::MetricsCollector`] are ordinary
//! observers of this stream — anything they can compute, a custom observer
//! can compute too, without the engine buffering a thing.
//!
//! ## Accounting contract
//!
//! The stream carries enough to reconstruct the run's [`crate::Metrics`]
//! *exactly* (bit-for-bit, not just approximately):
//!
//! * time/charge/energy integrals come from [`SliceInfo`] (`duration` is the
//!   authoritative length — don't recompute it as `end() - start`, floating
//!   point may disagree in the last ulp);
//! * `busy_time`/`cycles_executed` come from [`SimEvent::Progress`], which
//!   reports exactly what the engine credited for one scheduling quantum;
//! * the counters map one-to-one onto `Release`, `Complete`, `Decision`,
//!   `Preempt`, `DeadlineMiss` and `Idle` events.

use crate::trace::{SliceKind, TraceSlice};
use crate::types::TaskRef;
use bas_taskgraph::GraphId;

/// One engine state transition, stamped with its simulation time.
///
/// Events are emitted in simulation order. Observers receive a `&SimState`
/// alongside each event reflecting the world *at* the event (EDF order
/// refreshed, battery view updated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// An instance of `graph` was released.
    Release {
        /// Nominal release time (= `instance · period`), seconds.
        t: f64,
        /// The graph released.
        graph: GraphId,
        /// The instance index (0-based).
        instance: u64,
        /// The instance's absolute deadline.
        deadline: f64,
    },
    /// A PE governor's reference frequency changed at a scheduling point.
    /// Emitted before the [`SimEvent::Decision`] it applies to; only emitted
    /// when the PE has ready work (an idle element has no meaningful
    /// `fref`).
    FreqChange {
        /// Scheduling-point time, seconds.
        t: f64,
        /// The processing element whose governor changed its mind.
        pe: usize,
        /// The new reference frequency, Hz, clamped into the PE's
        /// `[fmin, fmax]`.
        fref: f64,
    },
    /// A scheduling decision was taken (one per PE per scheduling point —
    /// the unit the `decisions` metric counts).
    Decision {
        /// Scheduling-point time, seconds.
        t: f64,
        /// The processing element deciding.
        pe: usize,
        /// The clamped reference frequency the policy was offered.
        fref: f64,
        /// The task picked; `None` idles the PE until the next event.
        picked: Option<TaskRef>,
    },
    /// A task starts (or resumes) executing.
    Start {
        /// Start time, seconds.
        t: f64,
        /// The processing element it runs on.
        pe: usize,
        /// The task now occupying the element.
        task: TaskRef,
        /// Average realized frequency of the upcoming quantum, Hz.
        frequency: f64,
    },
    /// A running, unfinished task was displaced by another pick.
    Preempt {
        /// Preemption time, seconds.
        t: f64,
        /// The processing element on which the displacement happened.
        pe: usize,
        /// The task that was displaced mid-execution.
        task: TaskRef,
        /// The task displacing it.
        by: TaskRef,
    },
    /// One scheduling quantum of execution was credited to `task` (the
    /// authoritative source for `busy_time`/`cycles_executed`).
    Progress {
        /// Quantum start time, seconds.
        t: f64,
        /// The processing element that ran it.
        pe: usize,
        /// The task that ran.
        task: TaskRef,
        /// Cycles credited (actual work retired, capped at the remaining
        /// actual demand).
        cycles: f64,
        /// Busy seconds credited (battery death truncates).
        busy: f64,
    },
    /// A node finished its actual demand.
    Complete {
        /// Completion time, seconds.
        t: f64,
        /// The processing element it completed on.
        pe: usize,
        /// The completed node.
        task: TaskRef,
        /// The actual cycles it consumed (revealed to schedulers only now).
        actual: f64,
        /// True when this completion finished the whole graph instance.
        instance_done: bool,
    },
    /// An instance blew its deadline (only in
    /// [`crate::DeadlineMode::DropAndCount`]; fail mode aborts with
    /// [`crate::SimError::DeadlineMiss`] instead of emitting).
    DeadlineMiss {
        /// Time the miss was detected (the next release boundary), seconds.
        t: f64,
        /// The graph whose instance missed.
        graph: GraphId,
        /// The deadline that passed unmet.
        deadline: f64,
    },
    /// A processing element idled. Emitted after the fact, so `duration`
    /// is the realized idle stretch (battery death truncates it).
    Idle {
        /// Idle start time, seconds.
        t: f64,
        /// The processing element that idled.
        pe: usize,
        /// Realized idle duration, seconds.
        duration: f64,
    },
    /// The mounted battery absorbed one constant-current slice; the
    /// scheduler-visible [`crate::BatteryView`] was refreshed to these
    /// values just before this event fired.
    BatteryStep {
        /// End time of the absorbed slice, seconds.
        t: f64,
        /// Remaining fraction of theoretical capacity, `[0, 1]`.
        state_of_charge: f64,
        /// Total charge delivered so far, coulombs.
        charge_delivered: f64,
        /// Whether the battery is now exhausted.
        exhausted: bool,
    },
}

impl SimEvent {
    /// The simulation time the event is stamped with, seconds.
    pub fn time(&self) -> f64 {
        match *self {
            SimEvent::Release { t, .. }
            | SimEvent::FreqChange { t, .. }
            | SimEvent::Decision { t, .. }
            | SimEvent::Start { t, .. }
            | SimEvent::Preempt { t, .. }
            | SimEvent::Progress { t, .. }
            | SimEvent::Complete { t, .. }
            | SimEvent::DeadlineMiss { t, .. }
            | SimEvent::Idle { t, .. }
            | SimEvent::BatteryStep { t, .. } => t,
        }
    }
}

/// One stretch of constant processor behaviour, as handed to
/// [`crate::SimObserver::on_slice`].
///
/// Unlike [`TraceSlice`] this carries the authoritative `duration` instead
/// of an end time (`start + duration` and a later `end - start` can differ
/// in the last ulp). Slices below the simulator's time resolution are
/// delivered too — they carry accounting weight — but the in-memory
/// [`crate::TraceRecorder`] and the JSONL writer drop them, exactly as the
/// historical trace did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SliceInfo {
    /// The processing element the slice belongs to (0 on a uniprocessor).
    pub pe: usize,
    /// Start time, seconds.
    pub start: f64,
    /// Authoritative slice length, seconds (battery death already applied).
    pub duration: f64,
    /// Battery current drawn during the slice, amperes.
    pub current: f64,
    /// What the processor was doing.
    pub kind: SliceKind,
}

impl SliceInfo {
    /// End time, seconds (`start + duration`).
    #[inline]
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }

    /// Convert to the [`TraceSlice`] representation used by [`crate::trace::Trace`].
    #[inline]
    pub fn to_trace_slice(&self) -> TraceSlice {
        TraceSlice { start: self.start, end: self.end(), current: self.current, kind: self.kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::{GraphId, NodeId};

    #[test]
    fn event_time_is_extracted_from_every_variant() {
        let task = TaskRef::new(GraphId::from_index(0), NodeId::from_index(0));
        let events = [
            SimEvent::Release { t: 1.0, graph: GraphId::from_index(0), instance: 0, deadline: 2.0 },
            SimEvent::FreqChange { t: 2.0, pe: 0, fref: 0.5 },
            SimEvent::Decision { t: 3.0, pe: 0, fref: 0.5, picked: Some(task) },
            SimEvent::Start { t: 4.0, pe: 0, task, frequency: 0.5 },
            SimEvent::Preempt { t: 5.0, pe: 0, task, by: task },
            SimEvent::Progress { t: 6.0, pe: 0, task, cycles: 1.0, busy: 2.0 },
            SimEvent::Complete { t: 7.0, pe: 0, task, actual: 1.0, instance_done: true },
            SimEvent::DeadlineMiss { t: 8.0, graph: GraphId::from_index(0), deadline: 8.0 },
            SimEvent::Idle { t: 9.0, pe: 0, duration: 1.0 },
            SimEvent::BatteryStep {
                t: 10.0,
                state_of_charge: 0.5,
                charge_delivered: 1.0,
                exhausted: false,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.time(), (i + 1) as f64);
        }
    }

    #[test]
    fn slice_end_and_trace_conversion() {
        let s = SliceInfo { pe: 0, start: 1.0, duration: 2.0, current: 0.5, kind: SliceKind::Idle };
        assert_eq!(s.end(), 3.0);
        let t = s.to_trace_slice();
        assert_eq!((t.start, t.end, t.current), (1.0, 3.0, 0.5));
    }
}
