//! Actual-computation sampling.
//!
//! The paper (§5): "Actual computation of a task is assumed to be chosen at
//! random between 20% and 100% of the WCET." The sampler is consulted once
//! per node per instance, at release time; schedulers never see the value —
//! they discover it when the node completes early (slack reclamation).

use bas_taskgraph::{Cycles, GraphId, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense per-graph/per-node storage keyed by the task set's stable node
/// ordering — the samplers are consulted for every node of every release,
/// so the former `HashMap<(GraphId, NodeId), f64>` lookups sat on the
/// engine's release hot path.
#[derive(Debug, Clone, Default)]
struct NodeTable {
    values: Vec<Vec<Option<f64>>>,
}

impl NodeTable {
    fn get(&self, g: GraphId, n: NodeId) -> Option<f64> {
        self.values.get(g.index()).and_then(|nodes| nodes.get(n.index())).copied().flatten()
    }

    fn slot(&mut self, g: GraphId, n: NodeId) -> &mut Option<f64> {
        let (g, n) = (g.index(), n.index());
        if self.values.len() <= g {
            self.values.resize(g + 1, Vec::new());
        }
        if self.values[g].len() <= n {
            self.values[g].resize(n + 1, None);
        }
        &mut self.values[g][n]
    }
}

/// Supplies each node instance's actual cycle demand.
pub trait ActualSampler: Send {
    /// Actual cycles for `(graph, node)` at instance `instance`, given the
    /// node's WCET. Must return a value in `(0, wcet]`.
    fn sample(&mut self, graph: GraphId, node: NodeId, instance: u64, wcet: Cycles) -> f64;
}

/// Uniform fraction of WCET — the paper's default U(0.2, 1.0).
#[derive(Debug, Clone)]
pub struct UniformFraction {
    lo: f64,
    hi: f64,
    rng: StdRng,
}

impl UniformFraction {
    /// Sample in `U(lo, hi)·wcet`.
    ///
    /// # Panics
    /// Panics unless `0 < lo ≤ hi ≤ 1`.
    pub fn new(lo: f64, hi: f64, seed: u64) -> Self {
        assert!(
            lo > 0.0 && lo <= hi && hi <= 1.0,
            "fraction range ({lo}, {hi}) must satisfy 0 < lo <= hi <= 1"
        );
        UniformFraction { lo, hi, rng: StdRng::seed_from_u64(seed) }
    }

    /// The paper's U(0.2, 1.0).
    pub fn paper(seed: u64) -> Self {
        UniformFraction::new(0.2, 1.0, seed)
    }
}

impl ActualSampler for UniformFraction {
    fn sample(&mut self, _g: GraphId, _n: NodeId, _k: u64, wcet: Cycles) -> f64 {
        let f = self.rng.gen_range(self.lo..=self.hi);
        (wcet as f64 * f).max(1.0).min(wcet as f64)
    }
}

/// Every instance takes exactly `fraction` of its WCET — used by the worked
/// examples (Figure 4's 40 %/60 % cases) and by deterministic tests.
#[derive(Debug, Clone, Copy)]
pub struct FixedFraction {
    fraction: f64,
}

impl FixedFraction {
    /// A fixed fraction in `(0, 1]`.
    ///
    /// # Panics
    /// Panics when outside that range.
    pub fn new(fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction {fraction} out of (0,1]");
        FixedFraction { fraction }
    }
}

impl ActualSampler for FixedFraction {
    fn sample(&mut self, _g: GraphId, _n: NodeId, _k: u64, wcet: Cycles) -> f64 {
        (wcet as f64 * self.fraction).max(1.0).min(wcet as f64)
    }
}

/// Worst case: actual = WCET always (the paper's Figure 5 trace assumption).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstCase;

impl ActualSampler for WorstCase {
    fn sample(&mut self, _g: GraphId, _n: NodeId, _k: u64, wcet: Cycles) -> f64 {
        wcet as f64
    }
}

/// Per-task **persistent** fractions: each task draws its characteristic
/// actual/WCET fraction once, uniformly from `U(lo, hi)`, and every instance
/// jitters around it.
///
/// This is the workload under which the paper's history-based `Xk`
/// estimation is meaningful at all: "one \[technique\] is to keep history of
/// previous instances of each task" (§4.2) presumes a task's demand is
/// predictable across instances (real tasks have characteristic behaviour —
/// a parser is always light, a DCT always heavy). With fractions redrawn
/// i.i.d. per instance, no estimator can beat the distribution mean and
/// pUBS degenerates to a WCET-driven order; EXPERIMENTS.md quantifies both
/// regimes.
#[derive(Debug, Clone)]
pub struct PersistentFraction {
    lo: f64,
    hi: f64,
    jitter: f64,
    rng: StdRng,
    fractions: NodeTable,
}

impl PersistentFraction {
    /// Characteristic fractions ~ `U(lo, hi)`; per-instance actual =
    /// `wcet · clamp(fraction ± U(0, jitter), lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `0 < lo ≤ hi ≤ 1` and `jitter ≥ 0`.
    pub fn new(lo: f64, hi: f64, jitter: f64, seed: u64) -> Self {
        assert!(
            lo > 0.0 && lo <= hi && hi <= 1.0,
            "fraction range ({lo}, {hi}) must satisfy 0 < lo <= hi <= 1"
        );
        assert!(jitter >= 0.0 && jitter.is_finite(), "jitter {jitter} must be >= 0");
        PersistentFraction {
            lo,
            hi,
            jitter,
            rng: StdRng::seed_from_u64(seed),
            fractions: NodeTable::default(),
        }
    }

    /// The paper's U(0.2, 1.0) range with 5 % per-instance jitter.
    pub fn paper(seed: u64) -> Self {
        PersistentFraction::new(0.2, 1.0, 0.05, seed)
    }
}

impl ActualSampler for PersistentFraction {
    fn sample(&mut self, g: GraphId, n: NodeId, _k: u64, wcet: Cycles) -> f64 {
        let (lo, hi) = (self.lo, self.hi);
        let slot = self.fractions.slot(g, n);
        let base = match *slot {
            Some(base) => base,
            None => {
                let drawn = self.rng.gen_range(lo..=hi);
                *slot = Some(drawn);
                drawn
            }
        };
        let jittered = if self.jitter > 0.0 {
            (base + self.rng.gen_range(-self.jitter..=self.jitter)).clamp(lo, hi)
        } else {
            base
        };
        (wcet as f64 * jittered).max(1.0).min(wcet as f64)
    }
}

/// Per-node fractions with a default — exact control for worked examples
/// (e.g. Figure 4: task1 at 40 %, task2 at 60 %).
#[derive(Debug, Clone)]
pub struct FractionTable {
    fractions: NodeTable,
    default: f64,
}

impl FractionTable {
    /// Start with a default fraction for unlisted nodes.
    ///
    /// # Panics
    /// Panics when `default` is outside `(0, 1]`.
    pub fn with_default(default: f64) -> Self {
        assert!(default > 0.0 && default <= 1.0, "fraction {default} out of (0,1]");
        FractionTable { fractions: NodeTable::default(), default }
    }

    /// Set one node's fraction.
    ///
    /// # Panics
    /// Panics when `fraction` is outside `(0, 1]`.
    pub fn set(mut self, graph: GraphId, node: NodeId, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction {fraction} out of (0,1]");
        *self.fractions.slot(graph, node) = Some(fraction);
        self
    }
}

impl ActualSampler for FractionTable {
    fn sample(&mut self, g: GraphId, n: NodeId, _k: u64, wcet: Cycles) -> f64 {
        let f = self.fractions.get(g, n).unwrap_or(self.default);
        (wcet as f64 * f).max(1.0).min(wcet as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid(i: usize) -> GraphId {
        GraphId::from_index(i)
    }
    fn nid(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn uniform_fraction_stays_in_range() {
        let mut s = UniformFraction::paper(1);
        for k in 0..1000 {
            let a = s.sample(gid(0), nid(0), k, 100);
            assert!((20.0..=100.0).contains(&a), "{a}");
        }
    }

    #[test]
    fn uniform_fraction_is_seed_deterministic() {
        let mut a = UniformFraction::paper(9);
        let mut b = UniformFraction::paper(9);
        for k in 0..50 {
            assert_eq!(a.sample(gid(0), nid(0), k, 77), b.sample(gid(0), nid(0), k, 77));
        }
    }

    #[test]
    fn uniform_fraction_covers_the_range() {
        let mut s = UniformFraction::paper(2);
        let samples: Vec<f64> = (0..2000).map(|k| s.sample(gid(0), nid(0), k, 1000)).collect();
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 250.0, "min {min} should approach 200");
        assert!(max > 950.0, "max {max} should approach 1000");
    }

    #[test]
    #[should_panic(expected = "must satisfy")]
    fn uniform_fraction_rejects_bad_range() {
        UniformFraction::new(0.0, 0.5, 0);
    }

    #[test]
    fn fixed_fraction_is_exact() {
        let mut s = FixedFraction::new(0.4);
        assert_eq!(s.sample(gid(0), nid(0), 0, 10), 4.0);
        assert_eq!(s.sample(gid(0), nid(1), 5, 100), 40.0);
    }

    #[test]
    fn tiny_wcet_never_rounds_to_zero() {
        let mut s = FixedFraction::new(0.2);
        let a = s.sample(gid(0), nid(0), 0, 1);
        assert_eq!(a, 1.0, "clamped to [1, wcet]");
    }

    #[test]
    fn worst_case_returns_wcet() {
        let mut s = WorstCase;
        assert_eq!(s.sample(gid(0), nid(0), 3, 55), 55.0);
    }

    #[test]
    fn persistent_fraction_is_stable_across_instances() {
        let mut s = PersistentFraction::new(0.2, 1.0, 0.0, 4);
        let first = s.sample(gid(0), nid(0), 0, 1000);
        for k in 1..20 {
            assert_eq!(s.sample(gid(0), nid(0), k, 1000), first);
        }
        // A different task gets its own (almost surely different) fraction.
        let other = s.sample(gid(0), nid(1), 0, 1000);
        assert_ne!(first, other);
    }

    #[test]
    fn persistent_fraction_jitters_within_range() {
        let mut s = PersistentFraction::paper(5);
        let mut values = Vec::new();
        for k in 0..50 {
            let a = s.sample(gid(1), nid(2), k, 1000);
            assert!((200.0..=1000.0).contains(&a), "{a}");
            values.push(a);
        }
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min, "jitter must vary instances");
        assert!(max - min <= 2.0 * 0.05 * 1000.0 + 1e-9, "spread {}", max - min);
    }

    #[test]
    fn fraction_table_uses_entries_then_default() {
        let mut s =
            FractionTable::with_default(1.0).set(gid(0), nid(0), 0.4).set(gid(0), nid(1), 0.6);
        assert_eq!(s.sample(gid(0), nid(0), 0, 10), 4.0);
        assert_eq!(s.sample(gid(0), nid(1), 0, 10), 6.0);
        assert_eq!(s.sample(gid(1), nid(0), 0, 10), 10.0);
    }
}
