//! Built-in reference policies.
//!
//! Only the *canonical EDF* order lives here (the simulator's own tests and
//! the paper's Figure 5(a) baseline need it); the paper's priority functions
//! (Random, LTF, STF, pUBS) and the BAS ready-list policies live in
//! `bas-core`, on top of this crate.

use crate::state::SimState;
use crate::traits::TaskPolicy;
use crate::types::TaskRef;

/// Canonical EDF ordering: always serve the most imminent released graph,
/// and within it run ready nodes in the graph's (deterministic) topological
/// order. This is the "Trace using Canonical EDF ordering" of the paper's
/// Figure 5(a).
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfTopo;

impl TaskPolicy for EdfTopo {
    fn name(&self) -> &'static str {
        "canonical-EDF"
    }

    fn pick(&mut self, state: &SimState, ready: &[TaskRef], _fref_hz: f64) -> Option<TaskRef> {
        let imminent = state.most_imminent()?;
        let graph = state.set()[imminent].graph();
        let topo = graph.topological_order();
        ready
            .iter()
            .filter(|t| t.graph == imminent)
            .min_by_key(|t| {
                topo.iter().position(|&n| n == t.node).expect("ready node belongs to the graph")
            })
            .copied()
    }

    fn event_driven(&self) -> bool {
        // A pure function of the EDF order (release/completion-driven) and
        // the ready list, over a static topological order.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::{GraphId, NodeId, PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn tref(g: usize, n: usize) -> TaskRef {
        TaskRef::new(GraphId::from_index(g), NodeId::from_index(n))
    }

    #[test]
    fn edf_topo_picks_most_imminent_graph_in_topo_order() {
        // T0 (D=20): two independent nodes; T1 (D=10): one node.
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("a", 2);
        b.add_node("b", 2);
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("c", 2);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap();
        let mut set = TaskSet::new();
        set.push(g0);
        set.push(g1);
        let mut state = SimState::new(set);
        state.release(GraphId::from_index(0), vec![2.0, 2.0]);
        state.release(GraphId::from_index(1), vec![2.0]);
        state.refresh_edf();
        let mut ready = Vec::new();
        state.ready_tasks(&mut ready);
        let mut p = EdfTopo;
        // T1 has the earlier deadline.
        assert_eq!(p.pick(&state, &ready, 1.0), Some(tref(1, 0)));
        // Finish T1; now T0's first topo node wins.
        state.advance(tref(1, 0), 2.0);
        state.refresh_edf();
        state.ready_tasks(&mut ready);
        assert_eq!(p.pick(&state, &ready, 1.0), Some(tref(0, 0)));
    }

    #[test]
    fn edf_topo_returns_none_when_nothing_released() {
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("a", 2);
        let mut set = TaskSet::new();
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
        let mut state = SimState::new(set);
        state.refresh_edf();
        let mut p = EdfTopo;
        assert_eq!(p.pick(&state, &[], 1.0), None);
    }
}
