//! Simulator error type.

use crate::types::TaskRef;
use std::fmt;

/// Errors raised by simulation configuration or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The task set is empty — nothing to schedule.
    EmptyTaskSet,
    /// The task set's worst-case utilization exceeds the processor
    /// (`Σ WCi/(Di·fmax) > 1`): EDF cannot schedule it, so every run would
    /// just be a parade of deadline misses.
    Overutilized {
        /// The offending utilization.
        utilization: f64,
    },
    /// Some graph's critical path cannot fit inside its period even at fmax.
    StructurallyInfeasible {
        /// Index of the offending graph.
        graph: usize,
    },
    /// A deadline was missed while [`DeadlineMode::Fail`] was selected.
    ///
    /// [`DeadlineMode::Fail`]: crate::engine::DeadlineMode::Fail
    DeadlineMiss {
        /// The graph whose instance missed.
        graph: usize,
        /// The absolute deadline that passed.
        deadline: f64,
    },
    /// The policy picked a task that is not in the ready list.
    InvalidPick {
        /// The offending pick.
        task: TaskRef,
    },
    /// A non-finite or non-positive horizon was configured.
    InvalidHorizon(f64),
    /// An experiment builder was run with a required component missing
    /// (the component's name is carried, e.g. `"processor"`).
    Unconfigured(&'static str),
    /// One processing element's mapped worst-case utilization exceeds 1:
    /// per-PE EDF cannot schedule its share.
    OverutilizedPe {
        /// The overloaded processing element.
        pe: usize,
        /// Its mapped utilization.
        utilization: f64,
    },
    /// The governor/policy banks do not match the platform: every PE needs
    /// exactly one governor and one policy.
    BankMismatch {
        /// Governors supplied.
        governors: usize,
        /// Policies supplied.
        policies: usize,
        /// Processing elements of the platform.
        pes: usize,
    },
    /// The node-to-PE mapping does not fit the task set or the platform
    /// (carries the mapping validator's message).
    InvalidMapping(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyTaskSet => write!(f, "task set is empty"),
            SimError::Overutilized { utilization } => {
                write!(f, "task set utilization {utilization:.3} exceeds 1.0 at fmax")
            }
            SimError::StructurallyInfeasible { graph } => {
                write!(f, "graph {graph}: critical path exceeds period at fmax")
            }
            SimError::DeadlineMiss { graph, deadline } => {
                write!(f, "graph {graph} missed its deadline at t = {deadline}")
            }
            SimError::InvalidPick { task } => {
                write!(f, "policy picked {task} which is not ready")
            }
            SimError::InvalidHorizon(h) => write!(f, "invalid horizon {h}"),
            SimError::Unconfigured(what) => {
                write!(f, "experiment is missing its {what}")
            }
            SimError::OverutilizedPe { pe, utilization } => {
                write!(f, "PE {pe}: mapped utilization {utilization:.3} exceeds 1.0 at its fmax")
            }
            SimError::BankMismatch { governors, policies, pes } => {
                write!(
                    f,
                    "platform has {pes} PEs but {governors} governor(s) and \
                     {policies} policy(ies) were supplied"
                )
            }
            SimError::InvalidMapping(msg) => write!(f, "invalid node-to-PE mapping: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        assert!(SimError::EmptyTaskSet.to_string().contains("empty"));
        assert!(SimError::Overutilized { utilization: 1.25 }.to_string().contains("1.25"));
        assert!(SimError::DeadlineMiss { graph: 3, deadline: 40.0 }.to_string().contains("t = 40"));
        assert!(SimError::InvalidHorizon(-1.0).to_string().contains("-1"));
        assert!(SimError::Unconfigured("processor").to_string().contains("processor"));
    }
}
