//! Observers — the composable consumers of a simulation's event stream.
//!
//! The engine ([`crate::Simulation`]) does not buffer anything itself: trace
//! recording, metrics accounting, streaming export and any custom analysis
//! are all [`SimObserver`]s attached to the run. The two built-ins here are
//! the reference implementations:
//!
//! * [`TraceRecorder`] — accumulates the in-memory [`Trace`] (what
//!   `SimConfig::record_trace` mounts for you);
//! * [`MetricsCollector`] — folds the stream into [`Metrics`], reproducing
//!   the engine's accounting bit-for-bit (see the contract in
//!   [`crate::event`]).
//!
//! A streaming exporter lives in [`crate::jsonl`]. Writing your own observer
//! is the intended extension point — implement either hook and attach with
//! [`crate::Simulation::attach`]:
//!
//! ```
//! use bas_sim::{SimEvent, SimObserver, SimState};
//!
//! /// Counts completions per graph without retaining anything else.
//! #[derive(Default)]
//! struct CompletionCounter {
//!     completions: Vec<u64>,
//! }
//!
//! impl SimObserver for CompletionCounter {
//!     fn on_event(&mut self, _state: &SimState, event: &SimEvent) {
//!         if let SimEvent::Complete { task, .. } = event {
//!             let ix = task.graph.index();
//!             if self.completions.len() <= ix {
//!                 self.completions.resize(ix + 1, 0);
//!             }
//!             self.completions[ix] += 1;
//!         }
//!     }
//! }
//! ```

use crate::event::{SimEvent, SliceInfo};
use crate::metrics::Metrics;
use crate::state::SimState;
use crate::time;
use crate::trace::Trace;

/// A consumer of the simulation's event/slice stream.
///
/// Both hooks default to no-ops; implement the ones you need. Hooks are
/// called synchronously from the engine, in simulation order, with a state
/// view reflecting the world at the event. Observers must not assume they
/// are the only consumer — the stream is fanned out to every attachment.
pub trait SimObserver {
    /// A discrete engine transition occurred.
    fn on_event(&mut self, state: &SimState, event: &SimEvent) {
        let _ = (state, event);
    }

    /// One constant-current stretch of processor behaviour elapsed. Slices
    /// below the time resolution are delivered too (they carry accounting
    /// weight); presentation-oriented observers should skip them like
    /// [`TraceRecorder`] does.
    fn on_slice(&mut self, state: &SimState, slice: &SliceInfo) {
        let _ = (state, slice);
    }
}

impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn on_event(&mut self, state: &SimState, event: &SimEvent) {
        (**self).on_event(state, event);
    }

    fn on_slice(&mut self, state: &SimState, slice: &SliceInfo) {
        (**self).on_slice(state, slice);
    }
}

/// Fans one observer slot out to several observers, in attachment order.
///
/// The engine's own attachment list already supports multiple observers;
/// `Fanout` is for the APIs that expose a *single* observer slot — e.g.
/// wrapping a streaming exporter plus a metrics collector behind one
/// `&mut dyn SimObserver` — and for composing observers before handing them
/// to such a slot.
///
/// ```
/// use bas_sim::{Fanout, MetricsCollector, SimObserver, TraceRecorder};
///
/// let mut metrics = MetricsCollector::new(2.0);
/// let mut trace = TraceRecorder::new();
/// let mut both = Fanout::new();
/// both.attach(&mut metrics).attach(&mut trace);
/// // `both` now forwards every hook to `metrics` and `trace`.
/// ```
#[derive(Default)]
pub struct Fanout<'a> {
    observers: Vec<&'a mut dyn SimObserver>,
}

impl<'a> Fanout<'a> {
    /// An empty fan-out (forwards to nobody).
    pub fn new() -> Self {
        Fanout { observers: Vec::new() }
    }

    /// Add an observer; hooks are forwarded in attachment order.
    pub fn attach(&mut self, observer: &'a mut dyn SimObserver) -> &mut Self {
        self.observers.push(observer);
        self
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// Whether no observers are attached.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl std::fmt::Debug for Fanout<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fanout").field("observers", &self.observers.len()).finish()
    }
}

impl SimObserver for Fanout<'_> {
    fn on_event(&mut self, state: &SimState, event: &SimEvent) {
        for obs in &mut self.observers {
            obs.on_event(state, event);
        }
    }

    fn on_slice(&mut self, state: &SimState, slice: &SliceInfo) {
        for obs in &mut self.observers {
            obs.on_slice(state, slice);
        }
    }
}

/// Records the in-memory [`Trace`] from the slice stream — the observer
/// behind `SimConfig::record_trace`, attachable externally as well.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    trace: Trace,
}

impl TraceRecorder {
    /// A recorder with an empty trace.
    pub fn new() -> Self {
        TraceRecorder { trace: Trace::new() }
    }

    /// A recorder whose trace has `pes` lanes pre-allocated (the engine
    /// sizes this from the platform so recording never grows the lane
    /// vector mid-run).
    pub fn with_lanes(pes: usize) -> Self {
        TraceRecorder { trace: Trace::with_lanes(pes) }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take the recorded trace out. Lanes that never received a slice are
    /// trimmed from the tail, so pre-allocated and lazily-grown recorders
    /// report the same [`Trace::lane_count`].
    pub fn into_trace(mut self) -> Trace {
        self.trace.trim_trailing_empty_lanes();
        self.trace
    }
}

impl SimObserver for TraceRecorder {
    fn on_slice(&mut self, _state: &SimState, slice: &SliceInfo) {
        if !time::negligible(slice.duration) {
            self.trace.push(slice.pe, slice.to_trace_slice());
        }
    }
}

/// Folds the event/slice stream into [`Metrics`].
///
/// This is the engine's own accounting: [`crate::Simulation`] runs one
/// internally and [`crate::SimOutcome::metrics`] is its result, so an
/// externally attached collector reconstructs the outcome's metrics exactly
/// (the equivalence the observer property tests pin down).
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    vbat: f64,
    metrics: Metrics,
    /// Per-graph release time of the currently active instance (indexed by
    /// `GraphId::index`), feeding the makespan accounting: a `Complete` with
    /// `instance_done` closes the span opened by the graph's `Release`.
    release_t: Vec<f64>,
}

impl MetricsCollector {
    /// A collector for a platform with battery voltage `vbat` (volts) —
    /// needed to integrate energy from the current-only slice stream.
    pub fn new(vbat: f64) -> Self {
        MetricsCollector { vbat, metrics: Metrics::default(), release_t: Vec::new() }
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Take the accumulated metrics out.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }
}

impl SimObserver for MetricsCollector {
    fn on_event(&mut self, _state: &SimState, event: &SimEvent) {
        match *event {
            SimEvent::Release { t, graph, .. } => {
                self.metrics.instances_released += 1;
                let ix = graph.index();
                if self.release_t.len() <= ix {
                    self.release_t.resize(ix + 1, f64::NAN);
                }
                self.release_t[ix] = t;
            }
            SimEvent::Decision { .. } => self.metrics.decisions += 1,
            SimEvent::Preempt { .. } => self.metrics.preemptions += 1,
            SimEvent::Progress { cycles, busy, .. } => {
                self.metrics.busy_time += busy;
                self.metrics.cycles_executed += cycles;
            }
            SimEvent::Complete { t, task, instance_done, .. } => {
                self.metrics.nodes_completed += 1;
                if instance_done {
                    self.metrics.instances_completed += 1;
                    if let Some(release) = self.release_t.get(task.graph.index()) {
                        if release.is_finite() {
                            self.metrics.makespan = self.metrics.makespan.max(t - release);
                        }
                    }
                }
            }
            SimEvent::DeadlineMiss { .. } => self.metrics.deadline_misses += 1,
            SimEvent::Idle { duration, .. } => self.metrics.idle_time += duration,
            SimEvent::FreqChange { .. } | SimEvent::Start { .. } | SimEvent::BatteryStep { .. } => {
            }
        }
    }

    fn on_slice(&mut self, _state: &SimState, slice: &SliceInfo) {
        // Every PE emits a slice covering each executed stretch, so wall
        // clock is counted once (PE 0's lane); charge and energy sum over
        // all PEs — the shared battery sees the summed current.
        if slice.pe == 0 {
            self.metrics.sim_time += slice.duration;
        }
        self.metrics.charge += slice.current * slice.duration;
        self.metrics.energy += slice.current * slice.duration * self.vbat;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SliceKind;
    use crate::types::TaskRef;
    use bas_taskgraph::{GraphId, NodeId, TaskSet};

    fn task() -> TaskRef {
        TaskRef::new(GraphId::from_index(0), NodeId::from_index(0))
    }

    #[test]
    fn collector_folds_events_into_counters() {
        let state = SimState::new(TaskSet::new());
        let mut c = MetricsCollector::new(2.0);
        c.on_event(
            &state,
            &SimEvent::Release {
                t: 0.0,
                graph: GraphId::from_index(0),
                instance: 0,
                deadline: 5.0,
            },
        );
        c.on_event(&state, &SimEvent::Decision { t: 0.0, pe: 0, fref: 1.0, picked: Some(task()) });
        c.on_event(
            &state,
            &SimEvent::Progress { t: 0.0, pe: 0, task: task(), cycles: 4.0, busy: 4.0 },
        );
        c.on_event(
            &state,
            &SimEvent::Complete { t: 4.0, pe: 0, task: task(), actual: 4.0, instance_done: true },
        );
        c.on_event(&state, &SimEvent::Idle { t: 4.0, pe: 0, duration: 1.0 });
        let m = c.metrics();
        assert_eq!(m.instances_released, 1);
        assert_eq!(m.decisions, 1);
        assert_eq!(m.nodes_completed, 1);
        assert_eq!(m.instances_completed, 1);
        assert_eq!(m.busy_time, 4.0);
        assert_eq!(m.cycles_executed, 4.0);
        assert_eq!(m.idle_time, 1.0);
        assert_eq!(m.makespan, 4.0, "release at 0, instance done at 4");
    }

    #[test]
    fn makespan_is_the_worst_release_to_completion_span() {
        let state = SimState::new(TaskSet::new());
        let mut c = MetricsCollector::new(2.0);
        let g0 = GraphId::from_index(0);
        let g1 = GraphId::from_index(1);
        let t0 = TaskRef::new(g0, NodeId::from_index(0));
        let t1 = TaskRef::new(g1, NodeId::from_index(0));
        // Instance 0 of g0: span 3. An intermediate node completion
        // (instance_done: false) must not close a span.
        c.on_event(&state, &SimEvent::Release { t: 0.0, graph: g0, instance: 0, deadline: 10.0 });
        c.on_event(
            &state,
            &SimEvent::Complete { t: 2.0, pe: 0, task: t0, actual: 2.0, instance_done: false },
        );
        c.on_event(
            &state,
            &SimEvent::Complete { t: 3.0, pe: 0, task: t0, actual: 1.0, instance_done: true },
        );
        assert_eq!(c.metrics().makespan, 3.0);
        // g1 released later, finishing 5 after its own release: worst span 5,
        // measured from the *graph's* release, not g0's.
        c.on_event(&state, &SimEvent::Release { t: 10.0, graph: g1, instance: 0, deadline: 20.0 });
        c.on_event(
            &state,
            &SimEvent::Complete { t: 15.0, pe: 0, task: t1, actual: 5.0, instance_done: true },
        );
        assert_eq!(c.metrics().makespan, 5.0);
        // A later, tighter instance does not shrink the recorded worst case.
        c.on_event(&state, &SimEvent::Release { t: 20.0, graph: g0, instance: 1, deadline: 30.0 });
        c.on_event(
            &state,
            &SimEvent::Complete { t: 21.0, pe: 0, task: t0, actual: 1.0, instance_done: true },
        );
        assert_eq!(c.metrics().makespan, 5.0);
    }

    #[test]
    fn collector_integrates_slices_with_vbat() {
        let state = SimState::new(TaskSet::new());
        let mut c = MetricsCollector::new(2.0);
        c.on_slice(
            &state,
            &SliceInfo { pe: 0, start: 0.0, duration: 3.0, current: 0.5, kind: SliceKind::Idle },
        );
        let m = c.into_metrics();
        assert_eq!(m.sim_time, 3.0);
        assert_eq!(m.charge, 1.5);
        assert_eq!(m.energy, 3.0);
    }

    #[test]
    fn fanout_forwards_both_hooks_to_every_observer_in_order() {
        #[derive(Default)]
        struct Log {
            events: usize,
            slices: usize,
        }
        impl SimObserver for Log {
            fn on_event(&mut self, _state: &SimState, _event: &SimEvent) {
                self.events += 1;
            }
            fn on_slice(&mut self, _state: &SimState, _slice: &SliceInfo) {
                self.slices += 1;
            }
        }

        let state = SimState::new(TaskSet::new());
        let mut a = Log::default();
        let mut b = Log::default();
        let mut fan = Fanout::new();
        fan.attach(&mut a).attach(&mut b);
        assert_eq!(fan.len(), 2);
        assert!(!fan.is_empty());
        fan.on_event(&state, &SimEvent::Idle { t: 0.0, pe: 0, duration: 1.0 });
        fan.on_slice(
            &state,
            &SliceInfo { pe: 0, start: 0.0, duration: 1.0, current: 0.1, kind: SliceKind::Idle },
        );
        fan.on_event(&state, &SimEvent::Idle { t: 1.0, pe: 0, duration: 1.0 });
        drop(fan);
        assert_eq!((a.events, a.slices), (2, 1));
        assert_eq!((b.events, b.slices), (2, 1));
    }

    #[test]
    fn fanout_composes_real_observers_identically_to_direct_attachment() {
        let state = SimState::new(TaskSet::new());
        let slice =
            SliceInfo { pe: 0, start: 0.0, duration: 2.0, current: 0.5, kind: SliceKind::Idle };

        let mut direct = MetricsCollector::new(2.0);
        direct.on_slice(&state, &slice);

        let mut fanned = MetricsCollector::new(2.0);
        let mut fan = Fanout::new();
        fan.attach(&mut fanned);
        fan.on_slice(&state, &slice);
        drop(fan);

        assert_eq!(direct.metrics().charge, fanned.metrics().charge);
        assert_eq!(direct.metrics().energy, fanned.metrics().energy);
        assert_eq!(direct.metrics().sim_time, fanned.metrics().sim_time);
    }

    #[test]
    fn recorder_skips_negligible_slices_and_merges_like_the_trace() {
        let state = SimState::new(TaskSet::new());
        let mut r = TraceRecorder::new();
        r.on_slice(
            &state,
            &SliceInfo { pe: 0, start: 0.0, duration: 1.0, current: 0.5, kind: SliceKind::Idle },
        );
        // Sub-resolution slice: accounted elsewhere, not recorded.
        r.on_slice(
            &state,
            &SliceInfo { pe: 0, start: 1.0, duration: 1e-12, current: 0.5, kind: SliceKind::Idle },
        );
        r.on_slice(
            &state,
            &SliceInfo { pe: 0, start: 1.0, duration: 1.0, current: 0.5, kind: SliceKind::Idle },
        );
        let trace = r.into_trace();
        assert_eq!(trace.len(), 1, "identical neighbours merge");
        assert_eq!(trace.slices()[0].end, 2.0);
    }
}
