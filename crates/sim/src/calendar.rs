//! The event calendar — the engine's O(log n) next-event index.
//!
//! The stepped engine used to find its next scheduling point by rescanning:
//! every graph's next release, every graph's in-flight transfer arrivals,
//! every PE's planned completion, every PE's constant-current leg boundary —
//! each a linear fold per step. The [`Calendar`] replaces those folds with
//! four **index-keyed binary min-heaps**, one per event kind, updated
//! incrementally at the point where an event time actually changes:
//!
//! * **Releases** — one entry per graph, re-keyed when an instance is
//!   released (`SimState::release_from`).
//! * **Transfer arrivals** — one entry per graph holding the earliest
//!   in-flight cross-PE payload arrival, re-keyed when a successor parks in
//!   or leaves the pending list.
//! * **Completions** — one entry per PE holding the planned completion of
//!   the PE's committed pick, re-keyed once per step at plan time. Keys are
//!   **step-relative durations** (the engine's step-length arithmetic works
//!   in durations; keeping the exact operands keeps results bit-identical).
//! * **Battery legs** — one entry per PE holding the remaining length of
//!   the PE's current constant-current leg; the union of all PEs' leg
//!   boundaries is the segmentation the battery absorbs. Step-relative,
//!   like completions.
//!
//! Every heap is *index-keyed*: the entry universe is fixed at
//! construction (graph count / PE count), entries are re-keyed in place
//! (`O(log n)` sift), and an entry with no upcoming event carries
//! `f64::INFINITY`. Peeking the earliest entry is `O(1)`.
//!
//! ## Deterministic tie-breaking
//!
//! Two events at the same time are ordered by **kind** (release, then
//! transfer arrival, then completion, then battery leg — the order the
//! engine handles coincident events in), then by the **stable graph/PE
//! index**. Within one heap the comparator is `(time, index)`; across heaps
//! [`Calendar::next_event`] applies the kind rank. No ordering decision
//! ever depends on heap insertion history, so replays are bit-stable.

use bas_taskgraph::GraphId;

/// A fixed-universe binary min-heap keyed by `f64` event times.
///
/// All `n` entries are always resident (absent events carry
/// `f64::INFINITY`); [`IndexHeap::set`] re-keys an entry in place and
/// restores the heap in `O(log n)`. Ties order by entry index, so the heap
/// root is a deterministic function of the key vector alone.
#[derive(Debug, Clone)]
pub(crate) struct IndexHeap {
    /// Heap-ordered entry indices.
    heap: Vec<u32>,
    /// `pos[entry]` = slot of `entry` within `heap`.
    pos: Vec<u32>,
    /// `time[entry]` = the entry's key.
    time: Vec<f64>,
}

impl IndexHeap {
    /// A heap of `n` entries, all at `f64::INFINITY` (no event).
    pub fn new(n: usize) -> Self {
        IndexHeap {
            heap: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            time: vec![f64::INFINITY; n],
        }
    }

    /// `(time, index)` strict order. Keys are event times — never NaN.
    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        let (ta, tb) = (self.time[a as usize], self.time[b as usize]);
        ta < tb || (ta == tb && a < b)
    }

    /// The entry's current key.
    #[inline]
    pub fn get(&self, entry: usize) -> f64 {
        self.time[entry]
    }

    /// Re-key `entry` to `t` and restore the heap, `O(log n)`.
    pub fn set(&mut self, entry: usize, t: f64) {
        debug_assert!(!t.is_nan(), "event times are never NaN");
        let old = self.time[entry];
        if old == t {
            return;
        }
        self.time[entry] = t;
        let slot = self.pos[entry] as usize;
        if t < old {
            self.sift_up(slot);
        } else {
            self.sift_down(slot);
        }
    }

    /// Clear the entry's event (key back to `f64::INFINITY`).
    #[inline]
    pub fn clear(&mut self, entry: usize) {
        self.set(entry, f64::INFINITY);
    }

    /// The earliest entry and its key — `O(1)`. `None` only for an empty
    /// universe; an all-infinity heap returns its first entry (callers
    /// treat an infinite key as "no event").
    #[inline]
    pub fn peek(&self) -> Option<(usize, f64)> {
        self.heap.first().map(|&e| (e as usize, self.time[e as usize]))
    }

    /// The earliest key, `f64::INFINITY` when no event is scheduled.
    #[inline]
    pub fn peek_time(&self) -> f64 {
        self.heap.first().map_or(f64::INFINITY, |&e| self.time[e as usize])
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if self.less(self.heap[slot], self.heap[parent]) {
                self.swap_slots(slot, parent);
                slot = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        let n = self.heap.len();
        loop {
            let mut best = slot;
            for child in [2 * slot + 1, 2 * slot + 2] {
                if child < n && self.less(self.heap[child], self.heap[best]) {
                    best = child;
                }
            }
            if best == slot {
                return;
            }
            self.swap_slots(slot, best);
            slot = best;
        }
    }

    #[inline]
    fn swap_slots(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }
}

/// The next scheduled occurrence on the calendar, as
/// [`Calendar::next_event`] reports it (times absolute).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalendarEvent {
    /// The next instance release of `graph`.
    Release {
        /// Graph whose next instance releases.
        graph: GraphId,
        /// Absolute release time.
        t: f64,
    },
    /// The earliest in-flight cross-PE payload of `graph` lands.
    TransferArrival {
        /// Graph whose pending successor becomes ready.
        graph: GraphId,
        /// Absolute arrival time.
        t: f64,
    },
    /// The committed pick on `pe` runs to completion.
    Completion {
        /// Processing element the pick runs on.
        pe: usize,
        /// Absolute completion time.
        t: f64,
    },
    /// The current constant-current leg of `pe` ends.
    BatteryLeg {
        /// Processing element whose drain leg ends.
        pe: usize,
        /// Absolute leg-boundary time.
        t: f64,
    },
}

impl CalendarEvent {
    /// The event's absolute time.
    pub fn time(&self) -> f64 {
        match *self {
            CalendarEvent::Release { t, .. }
            | CalendarEvent::TransferArrival { t, .. }
            | CalendarEvent::Completion { t, .. }
            | CalendarEvent::BatteryLeg { t, .. } => t,
        }
    }

    /// The kind's rank in the deterministic tie-break (the order the
    /// engine handles coincident events in).
    fn rank(&self) -> u8 {
        match self {
            CalendarEvent::Release { .. } => 0,
            CalendarEvent::TransferArrival { .. } => 1,
            CalendarEvent::Completion { .. } => 2,
            CalendarEvent::BatteryLeg { .. } => 3,
        }
    }
}

/// The engine's event calendar: per-kind index-keyed min-heaps over the
/// fixed graph/PE universe. See the module docs for which component keys
/// which heap and in what time frame.
#[derive(Debug, Clone)]
pub struct Calendar {
    releases: IndexHeap,
    transfers: IndexHeap,
    completions: IndexHeap,
    legs: IndexHeap,
}

impl Calendar {
    /// A calendar over `graphs` task graphs and `pes` processing elements,
    /// with no events scheduled.
    pub fn new(graphs: usize, pes: usize) -> Self {
        Calendar {
            releases: IndexHeap::new(graphs),
            transfers: IndexHeap::new(graphs),
            completions: IndexHeap::new(pes),
            legs: IndexHeap::new(pes),
        }
    }

    // ---- releases (absolute times) -----------------------------------

    /// Schedule the next release of `graph` at absolute `t`.
    #[inline]
    pub fn set_release(&mut self, graph: GraphId, t: f64) {
        self.releases.set(graph.index(), t);
    }

    /// Earliest upcoming release across all graphs, `O(1)`.
    #[inline]
    pub fn next_release(&self) -> f64 {
        self.releases.peek_time()
    }

    // ---- transfer arrivals (absolute times) --------------------------

    /// Schedule (or clear, with `f64::INFINITY`) the earliest in-flight
    /// payload arrival of `graph`.
    #[inline]
    pub fn set_transfer(&mut self, graph: GraphId, t: f64) {
        self.transfers.set(graph.index(), t);
    }

    /// The graph's earliest in-flight arrival (`f64::INFINITY` when none).
    #[inline]
    pub fn transfer_of(&self, graph: GraphId) -> f64 {
        self.transfers.get(graph.index())
    }

    /// Earliest in-flight arrival across all graphs, `O(1)`.
    #[inline]
    pub fn next_transfer(&self) -> f64 {
        self.transfers.peek_time()
    }

    // ---- completions (step-relative durations) -----------------------

    /// Plan the committed pick on `pe` to complete `dur` after the step
    /// start (`f64::INFINITY` = the PE has no plan this step).
    #[inline]
    pub fn set_completion(&mut self, pe: usize, dur: f64) {
        self.completions.set(pe, dur);
    }

    /// The earliest planned completion across PEs as a step-relative
    /// duration, `O(1)` (`f64::INFINITY` when every PE idles).
    #[inline]
    pub fn next_completion(&self) -> f64 {
        self.completions.peek_time()
    }

    // ---- battery legs (step-relative durations) ----------------------

    /// Key the remaining length of the current constant-current leg on
    /// `pe` (`f64::INFINITY` once the PE's lane is exhausted).
    #[inline]
    pub fn set_leg(&mut self, pe: usize, remaining: f64) {
        self.legs.set(pe, remaining);
    }

    /// The PE's current leg remainder.
    #[inline]
    pub fn leg_of(&self, pe: usize) -> f64 {
        self.legs.get(pe)
    }

    /// The earliest leg boundary across PEs (step-relative), `O(1)` — the
    /// length of the next summed-current segment the battery absorbs.
    #[inline]
    pub fn next_leg(&self) -> f64 {
        self.legs.peek_time()
    }

    /// Clear every per-step entry (completions and legs) — called at step
    /// end so a calendar snapshot between steps only shows durable events.
    pub fn clear_step_entries(&mut self) {
        for pe in 0..self.completions.time.len() {
            self.completions.clear(pe);
            self.legs.clear(pe);
        }
    }

    /// The earliest scheduled occurrence across every kind, with times
    /// made absolute against `now` for the step-relative kinds, or `None`
    /// when nothing is scheduled. Coincident events order by kind rank
    /// (release < transfer arrival < completion < battery leg), then by
    /// graph/PE index — the engine's deterministic tie-break.
    pub fn next_event(&self, now: f64) -> Option<CalendarEvent> {
        let mut best: Option<CalendarEvent> = None;
        let mut consider = |candidate: CalendarEvent| {
            if !candidate.time().is_finite() {
                return;
            }
            let better = match &best {
                None => true,
                Some(cur) => {
                    candidate.time() < cur.time()
                        || (candidate.time() == cur.time() && candidate.rank() < cur.rank())
                }
            };
            if better {
                best = Some(candidate);
            }
        };
        if let Some((g, t)) = self.releases.peek() {
            consider(CalendarEvent::Release { graph: GraphId::from_index(g), t });
        }
        if let Some((g, t)) = self.transfers.peek() {
            consider(CalendarEvent::TransferArrival { graph: GraphId::from_index(g), t });
        }
        if let Some((pe, dur)) = self.completions.peek() {
            consider(CalendarEvent::Completion { pe, t: now + dur });
        }
        if let Some((pe, dur)) = self.legs.peek() {
            consider(CalendarEvent::BatteryLeg { pe, t: now + dur });
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid(i: usize) -> GraphId {
        GraphId::from_index(i)
    }

    #[test]
    fn heap_pops_in_time_order_with_index_tiebreak() {
        let mut h = IndexHeap::new(5);
        h.set(3, 2.0);
        h.set(1, 1.0);
        h.set(4, 1.0); // ties with entry 1 — index 1 wins
        h.set(0, 7.0);
        assert_eq!(h.peek(), Some((1, 1.0)));
        h.clear(1);
        assert_eq!(h.peek(), Some((4, 1.0)));
        h.clear(4);
        assert_eq!(h.peek(), Some((3, 2.0)));
        h.clear(3);
        assert_eq!(h.peek(), Some((0, 7.0)));
        h.clear(0);
        assert_eq!(h.peek_time(), f64::INFINITY, "entry 2 never scheduled");
    }

    #[test]
    fn rekeying_moves_entries_both_ways() {
        let mut h = IndexHeap::new(4);
        for (i, t) in [(0, 4.0), (1, 3.0), (2, 2.0), (3, 1.0)] {
            h.set(i, t);
        }
        assert_eq!(h.peek(), Some((3, 1.0)));
        h.set(3, 10.0); // push the root down
        assert_eq!(h.peek(), Some((2, 2.0)));
        h.set(0, 0.5); // pull a leaf up
        assert_eq!(h.peek(), Some((0, 0.5)));
        // Exhaustive drain stays sorted.
        let mut order = Vec::new();
        while h.peek_time().is_finite() {
            let (e, t) = h.peek().unwrap();
            order.push(t);
            h.clear(e);
        }
        assert_eq!(order, vec![0.5, 2.0, 3.0, 10.0]);
    }

    #[test]
    fn heap_root_is_a_function_of_keys_not_history() {
        // Two different update histories, same final keys -> same root.
        let keys = [5.0, 2.0, 2.0, 9.0, 2.0];
        let mut a = IndexHeap::new(5);
        for (i, &t) in keys.iter().enumerate() {
            a.set(i, t);
        }
        let mut b = IndexHeap::new(5);
        for (i, &t) in keys.iter().enumerate().rev() {
            b.set(i, 100.0 + i as f64);
            b.set(i, t);
        }
        assert_eq!(a.peek(), b.peek());
        assert_eq!(a.peek(), Some((1, 2.0)), "lowest index wins the tie");
    }

    #[test]
    fn calendar_merges_kinds_with_rank_tiebreak() {
        let mut cal = Calendar::new(2, 2);
        cal.set_release(gid(0), 10.0);
        cal.set_transfer(gid(1), 10.0);
        cal.set_completion(0, 4.0); // absolute 6 + 4 = 10 too
        cal.set_leg(1, 4.0);
        // All four coincide at t = 10: kind rank orders them.
        assert_eq!(cal.next_event(6.0), Some(CalendarEvent::Release { graph: gid(0), t: 10.0 }));
        cal.set_release(gid(0), 20.0);
        assert_eq!(
            cal.next_event(6.0),
            Some(CalendarEvent::TransferArrival { graph: gid(1), t: 10.0 })
        );
        cal.set_transfer(gid(1), f64::INFINITY);
        assert_eq!(cal.next_event(6.0), Some(CalendarEvent::Completion { pe: 0, t: 10.0 }));
        cal.set_completion(0, f64::INFINITY);
        assert_eq!(cal.next_event(6.0), Some(CalendarEvent::BatteryLeg { pe: 1, t: 10.0 }));
    }

    #[test]
    fn step_entries_clear_together() {
        let mut cal = Calendar::new(1, 3);
        cal.set_release(gid(0), 50.0);
        for pe in 0..3 {
            cal.set_completion(pe, 1.0 + pe as f64);
            cal.set_leg(pe, 0.5);
        }
        assert_eq!(cal.next_completion(), 1.0);
        assert_eq!(cal.next_leg(), 0.5);
        cal.clear_step_entries();
        assert_eq!(cal.next_completion(), f64::INFINITY);
        assert_eq!(cal.next_leg(), f64::INFINITY);
        // Durable kinds survive.
        assert_eq!(cal.next_release(), 50.0);
        assert_eq!(cal.next_event(0.0), Some(CalendarEvent::Release { graph: gid(0), t: 50.0 }));
    }

    #[test]
    fn empty_calendar_has_no_events() {
        let cal = Calendar::new(2, 2);
        assert_eq!(cal.next_event(0.0), None);
        assert_eq!(cal.next_release(), f64::INFINITY);
        assert_eq!(cal.next_transfer(), f64::INFINITY);
    }
}
