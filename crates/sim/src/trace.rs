//! Execution traces: what ran, when, at which operating point, drawing how
//! much current — and the reduction to a battery [`LoadProfile`].

use crate::types::TaskRef;
use bas_battery::LoadProfile;
use std::fmt;

/// What the processor was doing during a slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SliceKind {
    /// Executing a task at the operating point with the given table index.
    Run {
        /// The task being executed.
        task: TaskRef,
        /// Index into the processor's operating-point table.
        opp: usize,
        /// The clock frequency of that operating point, Hz.
        frequency: f64,
    },
    /// Idle (no ready work, or policy chose to idle).
    Idle,
}

/// One maximal stretch of constant behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSlice {
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds (`end > start`).
    pub end: f64,
    /// Battery current drawn during the slice, amperes.
    pub current: f64,
    /// Activity.
    pub kind: SliceKind,
}

impl TraceSlice {
    /// Slice duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    slices: Vec<TraceSlice>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { slices: Vec::new() }
    }

    /// Append a slice; merges with the tail when both the activity and the
    /// current are unchanged (keeps traces compact across event boundaries
    /// that did not change anything).
    pub(crate) fn push(&mut self, slice: TraceSlice) {
        debug_assert!(slice.end > slice.start, "empty slice");
        if let Some(last) = self.slices.last_mut() {
            debug_assert!(
                slice.start >= last.end - crate::time::eps_for(last.end),
                "slices must be time-ordered"
            );
            if last.kind == slice.kind && last.current == slice.current {
                last.end = slice.end;
                return;
            }
        }
        self.slices.push(slice);
    }

    /// The slices in time order.
    #[inline]
    pub fn slices(&self) -> &[TraceSlice] {
        &self.slices
    }

    /// Number of slices.
    #[inline]
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// True when no slice was recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Total traced time, seconds.
    pub fn duration(&self) -> f64 {
        self.slices.last().map_or(0.0, |s| s.end) - self.slices.first().map_or(0.0, |s| s.start)
    }

    /// Total busy (non-idle) time, seconds.
    pub fn busy_time(&self) -> f64 {
        self.slices
            .iter()
            .filter(|s| matches!(s.kind, SliceKind::Run { .. }))
            .map(TraceSlice::duration)
            .sum()
    }

    /// Reduce to the battery-facing load profile.
    pub fn to_load_profile(&self) -> LoadProfile {
        let mut p = LoadProfile::new();
        for s in &self.slices {
            p.push(s.current, s.duration());
        }
        p
    }

    /// Check structural well-formedness: time-ordered, gap-free, positive
    /// durations. Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.slices.iter().enumerate() {
            if s.end <= s.start {
                return Err(format!("slice {i} has non-positive duration"));
            }
            if s.current < 0.0 || !s.current.is_finite() {
                return Err(format!("slice {i} has invalid current {}", s.current));
            }
            if i > 0 {
                let prev = &self.slices[i - 1];
                let gap = (s.start - prev.end).abs();
                if gap > crate::time::eps_for(s.start) {
                    return Err(format!("gap/overlap of {gap} s between slices {} and {i}", i - 1));
                }
            }
        }
        Ok(())
    }

    /// Tasks in first-execution order (for comparing schedules in tests and
    /// the worked-example binaries).
    pub fn execution_order(&self) -> Vec<TaskRef> {
        let mut seen = Vec::new();
        for s in &self.slices {
            if let SliceKind::Run { task, .. } = s.kind {
                if !seen.contains(&task) {
                    seen.push(task);
                }
            }
        }
        seen
    }

    /// Render an ASCII Gantt-like listing (one line per slice) — used by the
    /// figure binaries to print the paper's example traces.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.slices {
            use fmt::Write;
            match s.kind {
                SliceKind::Run { task, frequency, .. } => writeln!(
                    out,
                    "  [{:8.3} – {:8.3}] run {:<8} @ {:6.3} Hz  ({:.3} A)",
                    s.start,
                    s.end,
                    task.to_string(),
                    frequency,
                    s.current
                )
                .unwrap(),
                SliceKind::Idle => writeln!(
                    out,
                    "  [{:8.3} – {:8.3}] idle                        ({:.3} A)",
                    s.start, s.end, s.current
                )
                .unwrap(),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::{GraphId, NodeId};

    fn task(g: usize, n: usize) -> TaskRef {
        TaskRef::new(GraphId::from_index(g), NodeId::from_index(n))
    }

    fn run_slice(start: f64, end: f64, current: f64, g: usize) -> TraceSlice {
        TraceSlice {
            start,
            end,
            current,
            kind: SliceKind::Run { task: task(g, 0), opp: 0, frequency: 1.0 },
        }
    }

    #[test]
    fn push_merges_identical_neighbors() {
        let mut t = Trace::new();
        t.push(run_slice(0.0, 1.0, 0.5, 0));
        t.push(run_slice(1.0, 2.0, 0.5, 0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.slices()[0].end, 2.0);
    }

    #[test]
    fn push_keeps_distinct_neighbors() {
        let mut t = Trace::new();
        t.push(run_slice(0.0, 1.0, 0.5, 0));
        t.push(run_slice(1.0, 2.0, 0.7, 0)); // different current
        t.push(run_slice(2.0, 3.0, 0.7, 1)); // different task
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn durations_and_busy_time() {
        let mut t = Trace::new();
        t.push(run_slice(0.0, 2.0, 0.5, 0));
        t.push(TraceSlice { start: 2.0, end: 5.0, current: 0.05, kind: SliceKind::Idle });
        assert!((t.duration() - 5.0).abs() < 1e-12);
        assert!((t.busy_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn load_profile_preserves_charge() {
        let mut t = Trace::new();
        t.push(run_slice(0.0, 2.0, 0.5, 0));
        t.push(TraceSlice { start: 2.0, end: 3.0, current: 0.05, kind: SliceKind::Idle });
        let p = t.to_load_profile();
        assert!((p.total_charge() - (1.0 + 0.05)).abs() < 1e-12);
        assert!((p.duration() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_contiguous_traces() {
        let mut t = Trace::new();
        t.push(run_slice(0.0, 1.0, 0.5, 0));
        t.push(run_slice(1.0, 2.0, 0.7, 0));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_gaps() {
        let t = Trace { slices: vec![run_slice(0.0, 1.0, 0.5, 0), run_slice(1.5, 2.0, 0.7, 0)] };
        let err = t.validate().unwrap_err();
        assert!(err.contains("gap"), "{err}");
    }

    #[test]
    fn execution_order_reports_first_touch() {
        let mut t = Trace::new();
        t.push(run_slice(0.0, 1.0, 0.5, 1));
        t.push(run_slice(1.0, 2.0, 0.7, 0));
        t.push(run_slice(2.0, 3.0, 0.5, 1));
        assert_eq!(t.execution_order(), vec![task(1, 0), task(0, 0)]);
    }

    #[test]
    fn render_mentions_tasks_and_idle() {
        let mut t = Trace::new();
        t.push(run_slice(0.0, 1.0, 0.5, 0));
        t.push(TraceSlice { start: 1.0, end: 2.0, current: 0.05, kind: SliceKind::Idle });
        let s = t.render();
        assert!(s.contains("run"));
        assert!(s.contains("idle"));
        assert!(s.contains("T0.n0"));
    }
}
