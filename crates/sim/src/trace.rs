//! Execution traces: what ran, when, on which processing element, at which
//! operating point, drawing how much current — and the reduction to a
//! battery [`LoadProfile`].
//!
//! A [`Trace`] holds one time-ordered **lane** of [`TraceSlice`]s per
//! processing element. On the paper's uniprocessor there is exactly one
//! lane and every accessor behaves as it always did; on a multi-PE platform
//! the lanes run concurrently and the battery-facing reduction
//! ([`Trace::to_load_profile`]) sums the per-lane currents piecewise.

use crate::types::TaskRef;
use bas_battery::LoadProfile;
use std::fmt;

/// What the processor was doing during a slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SliceKind {
    /// Executing a task at the operating point with the given table index.
    Run {
        /// The task being executed.
        task: TaskRef,
        /// Index into the owning PE's operating-point table.
        opp: usize,
        /// The clock frequency of that operating point, Hz.
        frequency: f64,
    },
    /// Idle (no ready work, or policy chose to idle).
    Idle,
}

/// One maximal stretch of constant behaviour on one processing element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSlice {
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds (`end > start`).
    pub end: f64,
    /// Battery current drawn by this PE during the slice, amperes.
    pub current: f64,
    /// Activity.
    pub kind: SliceKind,
}

impl TraceSlice {
    /// Slice duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete execution trace: one lane per processing element.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    lanes: Vec<Vec<TraceSlice>>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace { lanes: Vec::new() }
    }

    /// Empty trace with `pes` lanes pre-allocated — the engine sizes its
    /// recorder from the [`bas_cpu::Platform`] width so the lane vector
    /// never grows mid-run. Trailing lanes that never receive a slice are
    /// trimmed, keeping [`Trace::lane_count`] identical to a lazily-grown
    /// trace.
    pub fn with_lanes(pes: usize) -> Self {
        Trace { lanes: vec![Vec::new(); pes] }
    }

    /// Append a slice to `pe`'s lane; merges with the lane's tail when both
    /// the activity and the current are unchanged (keeps traces compact
    /// across event boundaries — including the cuts other PEs' leg
    /// boundaries introduce — that did not change anything).
    pub(crate) fn push(&mut self, pe: usize, slice: TraceSlice) {
        debug_assert!(slice.end > slice.start, "empty slice");
        if self.lanes.len() <= pe {
            self.lanes.resize(pe + 1, Vec::new());
        }
        let lane = &mut self.lanes[pe];
        if let Some(last) = lane.last_mut() {
            debug_assert!(
                slice.start >= last.end - crate::time::eps_for(last.end),
                "slices must be time-ordered within a lane"
            );
            if last.kind == slice.kind && last.current == slice.current {
                last.end = slice.end;
                return;
            }
        }
        lane.push(slice);
    }

    /// The slices of PE 0's lane in time order — the whole trace on a
    /// uniprocessor (the historical accessor).
    #[inline]
    pub fn slices(&self) -> &[TraceSlice] {
        self.lane(0)
    }

    /// The slices of one PE's lane in time order (empty when the PE never
    /// emitted a slice).
    #[inline]
    pub fn lane(&self, pe: usize) -> &[TraceSlice] {
        self.lanes.get(pe).map_or(&[], Vec::as_slice)
    }

    /// Number of lanes (PEs that emitted at least one slice, by index).
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Total number of slices across all lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// True when no slice was recorded on any lane.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(Vec::is_empty)
    }

    /// Drop trailing lanes that never received a slice, so a
    /// [`Trace::with_lanes`] trace finishes with the same [`lane_count`]
    /// a lazily-grown one reports.
    ///
    /// [`lane_count`]: Trace::lane_count
    pub(crate) fn trim_trailing_empty_lanes(&mut self) {
        while self.lanes.last().is_some_and(Vec::is_empty) {
            self.lanes.pop();
        }
    }

    /// Total traced time, seconds (earliest start to latest end across
    /// lanes).
    pub fn duration(&self) -> f64 {
        let last = self
            .lanes
            .iter()
            .filter_map(|l| l.last().map(|s| s.end))
            .fold(f64::NEG_INFINITY, f64::max);
        let first = self
            .lanes
            .iter()
            .filter_map(|l| l.first().map(|s| s.start))
            .fold(f64::INFINITY, f64::min);
        if last.is_finite() && first.is_finite() {
            last - first
        } else {
            0.0
        }
    }

    /// Total busy (non-idle) time, seconds, summed across lanes.
    pub fn busy_time(&self) -> f64 {
        self.lanes
            .iter()
            .flatten()
            .filter(|s| matches!(s.kind, SliceKind::Run { .. }))
            .map(TraceSlice::duration)
            .sum()
    }

    /// Reduce to the battery-facing load profile. On one lane this is the
    /// slice sequence verbatim; with several lanes the per-PE currents are
    /// summed piecewise over the union of all slice boundaries (the load a
    /// shared battery actually sees).
    pub fn to_load_profile(&self) -> LoadProfile {
        let mut p = LoadProfile::new();
        if self.lanes.len() == 1 {
            for s in &self.lanes[0] {
                p.push(s.current, s.duration());
            }
            return p;
        }
        // K-way sweep over the (already time-ordered, gap-free) lanes: one
        // cursor per lane, each window bounded by the nearest upcoming
        // slice boundary, the window's current summed fresh from the ≤ K
        // covering slices. O(windows × lanes), not O(slices²).
        let mut cursor = vec![0usize; self.lanes.len()];
        let mut t = self
            .lanes
            .iter()
            .filter_map(|l| l.first().map(|s| s.start))
            .fold(f64::INFINITY, f64::min);
        loop {
            let mut next = f64::INFINITY;
            let mut current = 0.0;
            for (lane, cur) in self.lanes.iter().zip(cursor.iter_mut()) {
                while *cur < lane.len() && lane[*cur].end <= t {
                    *cur += 1;
                }
                let Some(s) = lane.get(*cur) else { continue };
                if s.start <= t {
                    current += s.current;
                    next = next.min(s.end);
                } else {
                    next = next.min(s.start);
                }
            }
            if !next.is_finite() {
                break;
            }
            if !crate::time::negligible(next - t) {
                p.push(current, next - t);
            }
            t = next;
        }
        p
    }

    /// Check structural well-formedness per lane: time-ordered, gap-free,
    /// positive durations. Returns the first problem found. (Lanes overlap
    /// each other in time by design — concurrency is not a defect.)
    pub fn validate(&self) -> Result<(), String> {
        for (pe, lane) in self.lanes.iter().enumerate() {
            for (i, s) in lane.iter().enumerate() {
                if s.end <= s.start {
                    return Err(format!("PE {pe} slice {i} has non-positive duration"));
                }
                if s.current < 0.0 || !s.current.is_finite() {
                    return Err(format!("PE {pe} slice {i} has invalid current {}", s.current));
                }
                if i > 0 {
                    let prev = &lane[i - 1];
                    let gap = (s.start - prev.end).abs();
                    if gap > crate::time::eps_for(s.start) {
                        return Err(format!(
                            "PE {pe}: gap/overlap of {gap} s between slices {} and {i}",
                            i - 1
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Tasks in first-execution order across all lanes (for comparing
    /// schedules in tests and the worked-example presets). Ties in start
    /// time resolve by lane index.
    pub fn execution_order(&self) -> Vec<TaskRef> {
        let mut runs: Vec<(f64, usize, TaskRef)> = Vec::new();
        for (pe, lane) in self.lanes.iter().enumerate() {
            for s in lane {
                if let SliceKind::Run { task, .. } = s.kind {
                    runs.push((s.start, pe, task));
                }
            }
        }
        runs.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("trace times are finite").then(a.1.cmp(&b.1))
        });
        let mut seen = Vec::new();
        for (_, _, task) in runs {
            if !seen.contains(&task) {
                seen.push(task);
            }
        }
        seen
    }

    /// Render an ASCII Gantt-like listing (one line per slice) — used by the
    /// figure presets to print the paper's example traces. A single lane
    /// renders exactly as the historical uniprocessor trace did; several
    /// lanes are listed per PE under a `PE <k>:` heading.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (pe, lane) in self.lanes.iter().enumerate() {
            if self.lanes.len() > 1 {
                use fmt::Write;
                writeln!(out, "  PE {pe}:").unwrap();
            }
            for s in lane {
                use fmt::Write;
                match s.kind {
                    SliceKind::Run { task, frequency, .. } => writeln!(
                        out,
                        "  [{:8.3} – {:8.3}] run {:<8} @ {:6.3} Hz  ({:.3} A)",
                        s.start,
                        s.end,
                        task.to_string(),
                        frequency,
                        s.current
                    )
                    .unwrap(),
                    SliceKind::Idle => writeln!(
                        out,
                        "  [{:8.3} – {:8.3}] idle                        ({:.3} A)",
                        s.start, s.end, s.current
                    )
                    .unwrap(),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::{GraphId, NodeId};

    fn task(g: usize, n: usize) -> TaskRef {
        TaskRef::new(GraphId::from_index(g), NodeId::from_index(n))
    }

    fn run_slice(start: f64, end: f64, current: f64, g: usize) -> TraceSlice {
        TraceSlice {
            start,
            end,
            current,
            kind: SliceKind::Run { task: task(g, 0), opp: 0, frequency: 1.0 },
        }
    }

    #[test]
    fn push_merges_identical_neighbors() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 1.0, 0.5, 0));
        t.push(0, run_slice(1.0, 2.0, 0.5, 0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.slices()[0].end, 2.0);
    }

    #[test]
    fn push_keeps_distinct_neighbors() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 1.0, 0.5, 0));
        t.push(0, run_slice(1.0, 2.0, 0.7, 0)); // different current
        t.push(0, run_slice(2.0, 3.0, 0.7, 1)); // different task
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lanes_are_independent() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 1.0, 0.5, 0));
        t.push(1, run_slice(0.0, 1.0, 0.5, 1));
        t.push(1, run_slice(1.0, 2.0, 0.5, 1)); // merges in lane 1 only
        assert_eq!(t.lane_count(), 2);
        assert_eq!(t.lane(0).len(), 1);
        assert_eq!(t.lane(1).len(), 1);
        assert_eq!(t.lane(1)[0].end, 2.0);
        assert_eq!(t.len(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn durations_and_busy_time() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 2.0, 0.5, 0));
        t.push(0, TraceSlice { start: 2.0, end: 5.0, current: 0.05, kind: SliceKind::Idle });
        assert!((t.duration() - 5.0).abs() < 1e-12);
        assert!((t.busy_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn busy_time_sums_across_lanes() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 2.0, 0.5, 0));
        t.push(1, run_slice(0.0, 3.0, 0.5, 1));
        assert!((t.busy_time() - 5.0).abs() < 1e-12);
        assert!((t.duration() - 3.0).abs() < 1e-12, "wall clock, not summed");
    }

    #[test]
    fn load_profile_preserves_charge() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 2.0, 0.5, 0));
        t.push(0, TraceSlice { start: 2.0, end: 3.0, current: 0.05, kind: SliceKind::Idle });
        let p = t.to_load_profile();
        assert!((p.total_charge() - (1.0 + 0.05)).abs() < 1e-12);
        assert!((p.duration() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn multi_lane_load_profile_sums_concurrent_currents() {
        let mut t = Trace::new();
        // PE0: 0.5 A over [0, 2); PE1: 0.3 A over [1, 3).
        t.push(0, run_slice(0.0, 2.0, 0.5, 0));
        t.push(1, run_slice(1.0, 3.0, 0.3, 1));
        let p = t.to_load_profile();
        // Charge: 0.5·2 + 0.3·2 = 1.6 C over 3 s.
        assert!((p.total_charge() - 1.6).abs() < 1e-12, "{}", p.total_charge());
        assert!((p.duration() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_contiguous_traces() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 1.0, 0.5, 0));
        t.push(0, run_slice(1.0, 2.0, 0.7, 0));
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validate_rejects_gaps() {
        let t =
            Trace { lanes: vec![vec![run_slice(0.0, 1.0, 0.5, 0), run_slice(1.5, 2.0, 0.7, 0)]] };
        let err = t.validate().unwrap_err();
        assert!(err.contains("gap"), "{err}");
    }

    #[test]
    fn execution_order_reports_first_touch() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 1.0, 0.5, 1));
        t.push(0, run_slice(1.0, 2.0, 0.7, 0));
        t.push(0, run_slice(2.0, 3.0, 0.5, 1));
        assert_eq!(t.execution_order(), vec![task(1, 0), task(0, 0)]);
    }

    #[test]
    fn execution_order_merges_lanes_by_start_time() {
        let mut t = Trace::new();
        t.push(1, run_slice(0.5, 1.0, 0.5, 1));
        t.push(0, run_slice(0.0, 1.0, 0.5, 0));
        assert_eq!(t.execution_order(), vec![task(0, 0), task(1, 0)]);
    }

    #[test]
    fn render_mentions_tasks_and_idle() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 1.0, 0.5, 0));
        t.push(0, TraceSlice { start: 1.0, end: 2.0, current: 0.05, kind: SliceKind::Idle });
        let s = t.render();
        assert!(s.contains("run"));
        assert!(s.contains("idle"));
        assert!(s.contains("T0.n0"));
        assert!(!s.contains("PE 0"), "single lane renders without PE headings");
    }

    #[test]
    fn render_labels_lanes_on_multi_pe_traces() {
        let mut t = Trace::new();
        t.push(0, run_slice(0.0, 1.0, 0.5, 0));
        t.push(1, run_slice(0.0, 1.0, 0.5, 1));
        let s = t.render();
        assert!(s.contains("PE 0:") && s.contains("PE 1:"), "{s}");
    }
}
