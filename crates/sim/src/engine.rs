//! The stepped discrete-event simulation engine.
//!
//! [`Simulation`] owns one simulation lifecycle: bind a task set, a governor,
//! a policy and a sampler; optionally mount a battery and attach
//! [`SimObserver`]s; then drive it with [`step`](Simulation::step) /
//! [`run_until`](Simulation::run_until) and take the results out once with
//! [`finish`](Simulation::finish). The monolithic
//! `Executor::run_for`/`run_until_battery_dead` pair this replaces could only
//! run to completion and cloned its `Trace`/`Metrics` into every outcome;
//! the stepped engine streams instead of buffering, and `finish` *moves*.
//!
//! Scheduling points are instance releases and node completions — exactly
//! the points at which the paper's pseudocode re-evaluates `fref` and
//! re-picks a task. Between points the chosen node runs at the governor's
//! `fref`, realized as (at most) two discrete-operating-point segments, high
//! leg first so the current is non-increasing *within* the slice (guideline
//! G1's "locally non-increasing" shape at the finest granularity we
//! control). A release arriving while a node runs preempts it (preemptive
//! EDF model); the node keeps its progress and re-enters the ready list.
//!
//! Every transition is narrated to the attached observers as a typed
//! [`SimEvent`]; every constant-current stretch as a slice (see
//! [`crate::event`]). The battery, when mounted, lives *inside* the engine:
//! it absorbs each slice as it is emitted, and its scheduler-visible
//! digest — a [`BatteryView`] — is refreshed on [`SimState`] before the next
//! decision, so governors and policies can finally react to state-of-charge
//! (see `bas_dvs::SocFloor` for the canonical battery-aware governor).

use crate::error::SimError;
use crate::event::{SimEvent, SliceInfo};
use crate::metrics::Metrics;
use crate::observer::{MetricsCollector, SimObserver, TraceRecorder};
use crate::state::{BatteryView, SimState};
use crate::time;
use crate::trace::{SliceKind, Trace};
use crate::traits::{FrequencyGovernor, TaskPolicy};
use crate::types::TaskRef;
use crate::workload::ActualSampler;
use bas_battery::{BatteryModel, LifetimeReport, StepOutcome};
use bas_cpu::{FreqPolicy, Processor};
use bas_taskgraph::TaskSet;

/// What to do when an instance is still unfinished at its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlineMode {
    /// Abort the simulation with [`SimError::DeadlineMiss`] — the right mode
    /// for experiments, where every scheduler is supposed to be miss-free.
    #[default]
    Fail,
    /// Record the miss (as a [`SimEvent::DeadlineMiss`]), drop the stale
    /// instance, release the new one. Useful for deliberately-overloaded
    /// what-if runs.
    DropAndCount,
}

/// Static configuration of a simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The DVS processor model.
    pub processor: Processor,
    /// How continuous `fref` maps onto discrete operating points.
    pub freq_policy: FreqPolicy,
    /// Deadline-miss behaviour.
    pub deadline_mode: DeadlineMode,
    /// Mount the built-in [`TraceRecorder`] (costs memory on long runs;
    /// metrics and battery accounting are always exact regardless — stream
    /// through a [`crate::JsonlWriter`] for O(1)-memory exports).
    pub record_trace: bool,
    /// Reject task sets that are over-utilized or structurally infeasible
    /// before running.
    pub check_feasibility: bool,
}

impl SimConfig {
    /// Config with the given processor and all defaults (interpolated
    /// frequencies, fail on miss, trace recording on, feasibility checked).
    pub fn new(processor: Processor) -> Self {
        SimConfig {
            processor,
            freq_policy: FreqPolicy::Interpolate,
            deadline_mode: DeadlineMode::Fail,
            record_trace: true,
            check_feasibility: true,
        }
    }
}

/// Everything a finished simulation hands back. Produced by
/// [`Simulation::finish`], which **moves** the accumulated trace and metrics
/// out of the engine — nothing is cloned.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Aggregate counters and integrals.
    pub metrics: Metrics,
    /// The execution trace when `record_trace` was set.
    pub trace: Option<Trace>,
    /// Battery lifetime report when a battery was mounted.
    pub battery: Option<LifetimeReport>,
}

/// How one [`Simulation::step`] (or a whole [`Simulation::run_until`])
/// ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The simulation advanced and can continue.
    Advanced,
    /// The clock reached the requested limit; more stepping is possible with
    /// a later limit.
    LimitReached,
    /// The mounted battery is exhausted; the simulation is over (further
    /// steps keep reporting this).
    BatteryExhausted,
}

/// The stepped simulation lifecycle binding a task set, a governor, a
/// policy, a sampler, an optional battery and any number of observers.
///
/// ```
/// use bas_sim::policy::EdfTopo;
/// use bas_sim::{MaxSpeed, SimConfig, Simulation, Step, WorstCase};
/// use bas_cpu::presets::unit_processor;
/// use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder, TaskSet};
///
/// let mut b = TaskGraphBuilder::new("T0");
/// b.add_node("t", 4);
/// let mut set = TaskSet::new();
/// set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
///
/// let (mut g, mut p, mut s) = (MaxSpeed, EdfTopo, WorstCase);
/// let mut sim =
///     Simulation::new(set, SimConfig::new(unit_processor()), &mut g, &mut p, &mut s).unwrap();
/// // Step to the first completion, inspect live state, then run out the
/// // horizon — the lifecycle the old run-to-completion API could not express.
/// sim.step().unwrap();
/// assert!(sim.state().now() > 0.0);
/// assert_eq!(sim.run_until(10.0).unwrap(), Step::LimitReached);
/// let outcome = sim.finish();
/// assert_eq!(outcome.metrics.instances_completed, 1);
/// ```
pub struct Simulation<'a> {
    cfg: SimConfig,
    state: SimState,
    governor: &'a mut dyn FrequencyGovernor,
    policy: &'a mut dyn TaskPolicy,
    sampler: &'a mut dyn ActualSampler,
    battery: Option<&'a mut dyn BatteryModel>,
    observers: Vec<&'a mut dyn SimObserver>,
    metrics: MetricsCollector,
    recorder: Option<TraceRecorder>,
    ready: Vec<TaskRef>,
    running: Option<TaskRef>,
    last_fref: Option<f64>,
    exhausted: bool,
}

impl<'a> Simulation<'a> {
    /// Bind a simulation. Fails fast on infeasible input when configured to.
    pub fn new(
        set: TaskSet,
        cfg: SimConfig,
        governor: &'a mut dyn FrequencyGovernor,
        policy: &'a mut dyn TaskPolicy,
        sampler: &'a mut dyn ActualSampler,
    ) -> Result<Self, SimError> {
        if set.is_empty() {
            return Err(SimError::EmptyTaskSet);
        }
        if cfg.check_feasibility {
            let fmax = cfg.processor.fmax();
            let u = set.utilization(fmax);
            if u > 1.0 + 1e-9 {
                return Err(SimError::Overutilized { utilization: u });
            }
            for (gid, g) in set.iter() {
                if !g.is_structurally_feasible(fmax) {
                    return Err(SimError::StructurallyInfeasible { graph: gid.index() });
                }
            }
        }
        let metrics = MetricsCollector::new(cfg.processor.supply().vbat);
        let recorder = cfg.record_trace.then(TraceRecorder::new);
        Ok(Simulation {
            cfg,
            state: SimState::new(set),
            governor,
            policy,
            sampler,
            battery: None,
            observers: Vec::new(),
            metrics,
            recorder,
            ready: Vec::new(),
            running: None,
            last_fref: None,
            exhausted: false,
        })
    }

    /// Mount `battery` inside the engine: every emitted slice discharges it,
    /// its exhaustion ends the simulation, and its scheduler-visible
    /// [`BatteryView`] appears on [`SimState::battery`] from now on. Mount
    /// before stepping; the caller keeps ownership and can read the model
    /// back after [`Simulation::finish`].
    pub fn mount_battery(&mut self, battery: &'a mut dyn BatteryModel) -> &mut Self {
        self.state.set_battery_view(Some(BatteryView::of(battery)));
        self.battery = Some(battery);
        self
    }

    /// Attach an observer; every [`SimEvent`] and slice from now on is
    /// fanned out to it (attach before stepping to see the whole stream).
    pub fn attach(&mut self, observer: &'a mut dyn SimObserver) -> &mut Self {
        self.observers.push(observer);
        self
    }

    /// The live scheduler-visible state.
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// The metrics accumulated so far (finish moves them out).
    pub fn metrics(&self) -> &Metrics {
        self.metrics.metrics()
    }

    /// Advance by one engine iteration (process due releases, take one
    /// scheduling decision, execute to the next event boundary), unbounded
    /// in time.
    pub fn step(&mut self) -> Result<Step, SimError> {
        self.step_until(f64::INFINITY)
    }

    /// Like [`Simulation::step`], but slices are truncated at `limit` and
    /// [`Step::LimitReached`] is returned once the clock is there (`limit`
    /// is exclusive: events at exactly `limit` are not processed).
    pub fn step_until(&mut self, limit: f64) -> Result<Step, SimError> {
        if self.exhausted {
            return Ok(Step::BatteryExhausted);
        }
        let t = self.state.now();
        if time::approx_ge(t, limit) {
            return Ok(Step::LimitReached);
        }
        self.process_releases(t)?;
        let t_next = self.state.next_release_any().min(limit);
        self.state.ready_tasks(&mut self.ready);

        // Governor first (fref feeds the policy's feasibility checks).
        let fmin = self.cfg.processor.fmin();
        let fmax = self.cfg.processor.fmax();
        let fref = if self.ready.is_empty() {
            fmin // nothing to run; value is irrelevant
        } else {
            self.governor.frequency(&self.state).clamp(fmin, fmax)
        };
        if !self.ready.is_empty() && self.last_fref != Some(fref) {
            self.dispatch_event(SimEvent::FreqChange { t, fref });
            self.last_fref = Some(fref);
        }

        let pick = if self.ready.is_empty() {
            None
        } else {
            self.policy.pick(&self.state, &self.ready, fref)
        };
        self.dispatch_event(SimEvent::Decision { t, fref, picked: pick });

        match pick {
            None => {
                let dt = t_next - t;
                if time::negligible(dt) {
                    self.state.set_now(t_next);
                    return Ok(Step::Advanced);
                }
                if let Some(stop) =
                    self.emit(t, dt, self.cfg.processor.supply().idle_current, SliceKind::Idle)
                {
                    self.dispatch_event(SimEvent::Idle { t, duration: stop - t });
                    self.state.set_now(stop);
                    self.exhausted = true;
                    return Ok(Step::BatteryExhausted);
                }
                self.dispatch_event(SimEvent::Idle { t, duration: dt });
                self.running = None;
                self.state.set_now(t_next);
            }
            Some(task) => {
                if self.ready.binary_search(&task).is_err() {
                    return Err(SimError::InvalidPick { task });
                }
                if let Some(prev) = self.running {
                    if prev != task && self.state.remaining_wc_node(prev) > 0.0 {
                        self.dispatch_event(SimEvent::Preempt { t, task: prev, by: task });
                    }
                }
                let rem_actual =
                    self.state.graph_ref(task.graph).nodes[task.node.index()].remaining_actual();
                let realization = self.cfg.processor.realize(fref, self.cfg.freq_policy);
                let dur_complete = rem_actual / realization.average_frequency;
                if time::negligible(dur_complete) {
                    // Residual below time resolution: complete in place.
                    self.complete_if_done(task, rem_actual, t);
                    return Ok(Step::Advanced);
                }
                let slack_to_event = t_next - t;
                let (dt, completing) = if dur_complete <= slack_to_event + time::eps_for(t_next) {
                    (dur_complete, true)
                } else {
                    (slack_to_event, false)
                };
                if time::negligible(dt) {
                    // Release boundary reached; go process it.
                    self.state.set_now(t_next);
                    return Ok(Step::Advanced);
                }
                if self.running != Some(task) {
                    self.dispatch_event(SimEvent::Start {
                        t,
                        task,
                        frequency: realization.average_frequency,
                    });
                }
                // Execute: high-frequency leg first, then low (locally
                // non-increasing current within the slice).
                let mut died_at = None;
                let mut elapsed = 0.0;
                let mut cycles_done = 0.0;
                let mut legs: [Option<(usize, f64)>; 2] = [None, None];
                match realization.hi {
                    Some(hi) => {
                        legs[0] = Some((hi.opp, dt * hi.time_fraction));
                        legs[1] = Some((realization.lo.opp, dt * realization.lo.time_fraction));
                    }
                    None => legs[0] = Some((realization.lo.opp, dt)),
                }
                for leg in legs.into_iter().flatten() {
                    let (opp_ix, leg_dt) = leg;
                    if time::negligible(leg_dt) {
                        continue;
                    }
                    let opp = self.cfg.processor.opps().get(opp_ix);
                    let current = self.cfg.processor.battery_current_at(opp_ix);
                    let kind = SliceKind::Run { task, opp: opp_ix, frequency: opp.frequency };
                    if let Some(stop) = self.emit(t + elapsed, leg_dt, current, kind) {
                        let survived = stop - (t + elapsed);
                        cycles_done += opp.frequency * survived;
                        elapsed += survived;
                        died_at = Some(t + elapsed);
                        break;
                    }
                    cycles_done += opp.frequency * leg_dt;
                    elapsed += leg_dt;
                }
                self.dispatch_event(SimEvent::Progress {
                    t,
                    task,
                    cycles: cycles_done.min(rem_actual),
                    busy: elapsed,
                });
                if let Some(stop) = died_at {
                    self.state.advance(task, cycles_done.min(rem_actual));
                    self.state.set_now(stop);
                    self.exhausted = true;
                    return Ok(Step::BatteryExhausted);
                }
                self.running = Some(task);
                if completing {
                    self.complete_if_done(task, rem_actual, t + dt);
                } else {
                    self.state.advance(task, cycles_done.min(rem_actual - 1e-3));
                }
                self.state.set_now(t + dt);
            }
        }
        Ok(Step::Advanced)
    }

    /// Run until the clock reaches `limit` (exclusive) or the mounted
    /// battery is exhausted, whichever comes first.
    pub fn run_until(&mut self, limit: f64) -> Result<Step, SimError> {
        if !(limit.is_finite() && limit > 0.0) {
            return Err(SimError::InvalidHorizon(limit));
        }
        loop {
            match self.step_until(limit)? {
                Step::Advanced => continue,
                end => return Ok(end),
            }
        }
    }

    /// End the lifecycle: **move** the accumulated metrics and trace out
    /// and, when a battery was mounted, derive its [`LifetimeReport`] (the
    /// two columns of the paper's Table 2).
    pub fn finish(self) -> SimOutcome {
        let battery = self.battery.map(|b| LifetimeReport {
            lifetime: self.state.now(),
            charge_delivered: b.charge_delivered(),
            died: b.is_exhausted(),
        });
        SimOutcome {
            metrics: self.metrics.into_metrics(),
            trace: self.recorder.map(TraceRecorder::into_trace),
            battery,
        }
    }

    // ------------------------------------------------------------------

    /// Process all releases due at or before the current time.
    fn process_releases(&mut self, t: f64) -> Result<(), SimError> {
        let ids: Vec<_> = self.state.set().graph_ids().collect();
        for gid in ids {
            while time::approx_le(self.state.next_release(gid), t) {
                if self.state.is_active(gid) {
                    // Deadline == release time of the next instance.
                    let deadline = self.state.deadline(gid).expect("active");
                    match self.cfg.deadline_mode {
                        DeadlineMode::Fail => {
                            return Err(SimError::DeadlineMiss { graph: gid.index(), deadline });
                        }
                        DeadlineMode::DropAndCount => {
                            self.dispatch_event(SimEvent::DeadlineMiss { t, graph: gid, deadline });
                            self.state.abandon(gid);
                        }
                    }
                }
                let release_t = self.state.next_release(gid);
                let instance = self.state.graph_ref(gid).next_instance;
                let graph = self.state.set()[gid].graph_arc();
                let actuals: Vec<f64> = graph
                    .node_ids()
                    .map(|n| self.sampler.sample(gid, n, instance, graph.wcet(n)))
                    .collect();
                self.state.release(gid, actuals);
                self.state.refresh_edf();
                let deadline = self.state.deadline(gid).expect("just released");
                self.dispatch_event(SimEvent::Release {
                    t: release_t,
                    graph: gid,
                    instance,
                    deadline,
                });
                self.governor.on_release(&self.state, gid);
            }
        }
        self.state.refresh_edf();
        Ok(())
    }

    /// Mark `task` complete after having run its full actual demand at time
    /// `t_complete`, and fire the completion hooks.
    fn complete_if_done(&mut self, task: TaskRef, rem_actual: f64, t_complete: f64) {
        let actual = self
            .state
            .advance(task, rem_actual)
            .expect("executing the full remaining actual must complete the node");
        let instance_done = !self.state.is_active(task.graph);
        self.state.refresh_edf();
        self.dispatch_event(SimEvent::Complete { t: t_complete, task, actual, instance_done });
        self.running = None;
        self.governor.on_completion(&self.state, task, actual);
        self.policy.on_completion(&self.state, task, actual);
    }

    /// Emit one constant-current slice: battery first (it may truncate),
    /// then the slice and battery events to every observer. Returns
    /// `Some(stop_time)` when the battery died inside it.
    fn emit(&mut self, start: f64, dt: f64, current: f64, kind: SliceKind) -> Option<f64> {
        let mut effective_dt = dt;
        let mut died = None;
        if let Some(b) = self.battery.as_deref_mut() {
            match b.step(current, dt) {
                StepOutcome::Alive => {}
                StepOutcome::Exhausted { survived } => {
                    effective_dt = survived;
                    died = Some(start + survived);
                }
            }
        }
        let view = self.battery.as_deref().map(BatteryView::of);
        if view.is_some() {
            self.state.set_battery_view(view);
        }
        self.dispatch_slice(SliceInfo { start, duration: effective_dt, current, kind });
        if let Some(v) = view {
            self.dispatch_event(SimEvent::BatteryStep {
                t: start + effective_dt,
                state_of_charge: v.state_of_charge,
                charge_delivered: v.charge_delivered,
                exhausted: v.exhausted,
            });
        }
        died
    }

    fn dispatch_event(&mut self, event: SimEvent) {
        self.metrics.on_event(&self.state, &event);
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.on_event(&self.state, &event);
        }
        for observer in self.observers.iter_mut() {
            observer.on_event(&self.state, &event);
        }
    }

    fn dispatch_slice(&mut self, slice: SliceInfo) {
        self.metrics.on_slice(&self.state, &slice);
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.on_slice(&self.state, &slice);
        }
        for observer in self.observers.iter_mut() {
            observer.on_slice(&self.state, &slice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EdfTopo;
    use crate::traits::MaxSpeed;
    use crate::workload::{FixedFraction, WorstCase};
    use bas_battery::IdealModel;
    use bas_cpu::presets::unit_processor;
    use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn single_task_set(wc: u64, period: f64) -> TaskSet {
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("t", wc);
        let mut set = TaskSet::new();
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), period).unwrap());
        set
    }

    fn chain_set() -> TaskSet {
        // T0: a(2) -> b(3), period 10; T1: c(2), period 5. U = 0.5 + 0.4 = 0.9.
        let mut b = TaskGraphBuilder::new("T0");
        let a = b.add_node("a", 2);
        let c = b.add_node("b", 3);
        b.add_edge(a, c).unwrap();
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("c", 2);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 5.0).unwrap();
        let mut set = TaskSet::new();
        set.push(g0);
        set.push(g1);
        set
    }

    fn cfg() -> SimConfig {
        SimConfig::new(unit_processor())
    }

    /// Run to `horizon` and finish — the old `run_for` in two calls.
    fn run_for(
        set: TaskSet,
        cfg: SimConfig,
        governor: &mut dyn FrequencyGovernor,
        policy: &mut dyn TaskPolicy,
        sampler: &mut dyn ActualSampler,
        horizon: f64,
    ) -> Result<SimOutcome, SimError> {
        let mut sim = Simulation::new(set, cfg, governor, policy, sampler)?;
        sim.run_until(horizon)?;
        Ok(sim.finish())
    }

    #[test]
    fn empty_set_is_rejected() {
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let err = Simulation::new(TaskSet::new(), cfg(), &mut g, &mut p, &mut s).err().unwrap();
        assert_eq!(err, SimError::EmptyTaskSet);
    }

    #[test]
    fn overutilized_set_is_rejected() {
        let set = single_task_set(20, 10.0); // U = 2
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let err = Simulation::new(set, cfg(), &mut g, &mut p, &mut s).err().unwrap();
        assert!(matches!(err, SimError::Overutilized { .. }));
    }

    #[test]
    fn single_task_at_fmax_completes_and_idles() {
        let set = single_task_set(4, 10.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 10.0).unwrap();
        let m = &out.metrics;
        assert_eq!(m.instances_released, 1);
        assert_eq!(m.instances_completed, 1);
        assert_eq!(m.nodes_completed, 1);
        assert!((m.busy_time - 4.0).abs() < 1e-9, "4 cycles at f=1");
        assert!((m.idle_time - 6.0).abs() < 1e-9);
        assert_eq!(m.deadline_misses, 0);
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
        assert!((trace.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn actual_fraction_shortens_execution() {
        let set = single_task_set(4, 10.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = FixedFraction::new(0.5);
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 10.0).unwrap();
        assert!((out.metrics.busy_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn precedence_is_respected_in_trace() {
        let set = chain_set();
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 10.0).unwrap();
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
        // T0.b must never run before T0.a completes: in execution order, a
        // precedes b.
        let order = trace.execution_order();
        let pos = |t: TaskRef| order.iter().position(|&x| x == t).expect("both ran");
        use bas_taskgraph::{GraphId, NodeId};
        let a = TaskRef::new(GraphId::from_index(0), NodeId::from_index(0));
        let b = TaskRef::new(GraphId::from_index(0), NodeId::from_index(1));
        assert!(pos(a) < pos(b));
        assert_eq!(out.metrics.deadline_misses, 0);
    }

    #[test]
    fn periodic_releases_recur() {
        let set = single_task_set(2, 5.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 20.0).unwrap();
        assert_eq!(out.metrics.instances_released, 4);
        assert_eq!(out.metrics.instances_completed, 4);
        assert!((out.metrics.busy_time - 8.0).abs() < 1e-9);
    }

    #[test]
    fn battery_death_cuts_the_run() {
        let set = single_task_set(5, 10.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut sim = Simulation::new(set, cfg(), &mut g, &mut p, &mut s).unwrap();
        // unit_processor full-speed draw is 1.8 A; 9 C dies after 5 s busy.
        let mut battery = IdealModel::new(9.0);
        sim.mount_battery(&mut battery);
        assert_eq!(sim.run_until(1e6).unwrap(), Step::BatteryExhausted);
        // The engine stays exhausted: further steps are no-ops.
        assert_eq!(sim.step().unwrap(), Step::BatteryExhausted);
        let out = sim.finish();
        let report = out.battery.unwrap();
        assert!(report.died);
        assert!(report.lifetime > 0.0 && report.lifetime < 20.0);
        assert!((report.charge_delivered - 9.0).abs() < 1e-6);
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
    }

    #[test]
    fn deadline_miss_fails_or_counts_by_mode() {
        // Worst case 5 every 5 at fmax=1 is exactly feasible; make it
        // infeasible by idling: use a policy that refuses to run.
        struct Lazy;
        impl TaskPolicy for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn pick(&mut self, _: &SimState, _: &[TaskRef], _: f64) -> Option<TaskRef> {
                None
            }
        }
        let mut g = MaxSpeed;
        let mut s = WorstCase;
        // Fail mode:
        let mut p = Lazy;
        let err =
            run_for(single_task_set(5, 5.0), cfg(), &mut g, &mut p, &mut s, 20.0).unwrap_err();
        assert!(matches!(err, SimError::DeadlineMiss { .. }));
        // Lenient mode:
        let mut cfg2 = cfg();
        cfg2.deadline_mode = DeadlineMode::DropAndCount;
        let mut p = Lazy;
        let mut g = MaxSpeed;
        let mut s = WorstCase;
        let out = run_for(single_task_set(5, 5.0), cfg2, &mut g, &mut p, &mut s, 20.0).unwrap();
        assert!(out.metrics.deadline_misses >= 3);
        assert_eq!(out.metrics.nodes_completed, 0);
    }

    #[test]
    fn invalid_pick_is_rejected() {
        struct Rogue;
        impl TaskPolicy for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn pick(&mut self, _: &SimState, _: &[TaskRef], _: f64) -> Option<TaskRef> {
                use bas_taskgraph::{GraphId, NodeId};
                Some(TaskRef::new(GraphId::from_index(0), NodeId::from_index(7)))
            }
        }
        let mut g = MaxSpeed;
        let mut p = Rogue;
        let mut s = WorstCase;
        let err =
            run_for(single_task_set(2, 10.0), cfg(), &mut g, &mut p, &mut s, 10.0).unwrap_err();
        assert!(matches!(err, SimError::InvalidPick { .. }));
    }

    #[test]
    fn invalid_horizon_is_rejected() {
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut sim =
            Simulation::new(single_task_set(2, 10.0), cfg(), &mut g, &mut p, &mut s).unwrap();
        assert!(sim.run_until(0.0).is_err());
        assert!(sim.run_until(f64::NAN).is_err());
    }

    #[test]
    fn charge_accounting_matches_trace_integral() {
        let set = chain_set();
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 10.0).unwrap();
        let profile = out.trace.as_ref().unwrap().to_load_profile();
        assert!(
            (profile.total_charge() - out.metrics.charge).abs() < 1e-9,
            "trace integral {} vs metrics {}",
            profile.total_charge(),
            out.metrics.charge
        );
    }

    #[test]
    fn preemption_on_release_is_counted() {
        // T0 runs 8 cycles over period 20; T1 (period 5, wc 1) preempts it.
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("long", 8);
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("short", 1);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 5.0).unwrap();
        let mut set = TaskSet::new();
        set.push(g0);
        set.push(g1);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 20.0).unwrap();
        assert!(out.metrics.preemptions >= 1, "{:?}", out.metrics);
        assert_eq!(out.metrics.deadline_misses, 0);
    }

    #[test]
    fn stepping_in_pieces_matches_one_run() {
        // run_until(5) → run_until(12.5) → run_until(20) must execute the
        // same schedule as one run_until(20). A split limit inserts an extra
        // scheduling point (one more decision, float round-off at the cut),
        // but under a deterministic governor/policy nothing else may change.
        let run = |splits: &[f64]| {
            let mut g = MaxSpeed;
            let mut p = EdfTopo;
            let mut s = FixedFraction::new(0.7);
            let mut sim = Simulation::new(chain_set(), cfg(), &mut g, &mut p, &mut s).unwrap();
            for &limit in splits {
                assert_eq!(sim.run_until(limit).unwrap(), Step::LimitReached);
            }
            sim.finish()
        };
        let whole = run(&[20.0]);
        let pieces = run(&[5.0, 12.5, 20.0]);
        let (a, b) = (&whole.metrics, &pieces.metrics);
        assert_eq!(a.nodes_completed, b.nodes_completed);
        assert_eq!(a.instances_released, b.instances_released);
        assert_eq!(a.instances_completed, b.instances_completed);
        assert_eq!(a.preemptions, b.preemptions);
        assert!(b.decisions >= a.decisions, "splits only add scheduling points");
        assert!((a.busy_time - b.busy_time).abs() < 1e-9);
        assert!((a.charge - b.charge).abs() < 1e-9);
        assert!((a.energy - b.energy).abs() < 1e-9);
        let (ta, tb) = (whole.trace.unwrap(), pieces.trace.unwrap());
        assert_eq!(ta.execution_order(), tb.execution_order());
        assert_eq!(ta.len(), tb.len(), "cut slices must re-merge in the trace");
    }

    #[test]
    fn battery_view_is_visible_to_the_scheduler() {
        // A governor that records the SoC it sees at every decision.
        struct SocProbe {
            seen: Vec<f64>,
        }
        impl FrequencyGovernor for SocProbe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn frequency(&mut self, state: &SimState) -> f64 {
                let view = state.battery().expect("battery mounted and visible");
                self.seen.push(view.state_of_charge);
                f64::INFINITY
            }
        }
        let mut g = SocProbe { seen: Vec::new() };
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut sim =
            Simulation::new(single_task_set(2, 5.0), cfg(), &mut g, &mut p, &mut s).unwrap();
        let mut battery = IdealModel::new(100.0);
        sim.mount_battery(&mut battery);
        sim.run_until(20.0).unwrap();
        drop(sim);
        assert!(g.seen.len() >= 4, "{:?}", g.seen);
        assert!((g.seen[0] - 1.0).abs() < 1e-12, "full at the first decision");
        assert!(
            g.seen.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "SoC is non-increasing under discharge: {:?}",
            g.seen
        );
        assert!(*g.seen.last().unwrap() < 1.0, "draw must be visible");
    }
}
