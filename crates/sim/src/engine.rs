//! The stepped discrete-event simulation engine.
//!
//! [`Simulation`] owns one simulation lifecycle: bind a task set, per-PE
//! governors and policies, and a sampler; optionally mount a battery and
//! attach [`SimObserver`]s; then drive it with [`step`](Simulation::step) /
//! [`run_until`](Simulation::run_until) and take the results out once with
//! [`finish`](Simulation::finish).
//!
//! ## Platform model
//!
//! The engine executes on a [`Platform`] of `N ≥ 1` processing elements. A
//! [`Mapping`] pins every DAG node to one PE; each PE has its own
//! [`FrequencyGovernor`] and [`TaskPolicy`] (consulted with the PE set as
//! the state's ambient scope, so uniprocessor governors transparently steer
//! their own element), its own ready queue (the global precedence-free set
//! filtered by the mapping), and its own run/idle slices. One shared
//! battery absorbs the **sum** of the per-PE currents, stepped over the
//! union of all PEs' constant-current stretches. [`Simulation::new`] is the
//! 1-PE compatibility constructor and reproduces the historical
//! uniprocessor engine bit for bit; [`Simulation::with_platform`] is the
//! multi-PE entry point.
//!
//! Scheduling points are instance releases and node completions (on any
//! PE) — exactly the points at which the paper's pseudocode re-evaluates
//! `fref` and re-picks a task. Between points each PE runs its chosen node
//! at its governor's `fref`, realized as (at most) two discrete
//! operating-point segments, high leg first so the current is
//! non-increasing *within* the slice (guideline G1's "locally
//! non-increasing" shape at the finest granularity we control). A release
//! arriving while a node runs preempts it (preemptive EDF model per PE);
//! the node keeps its progress and re-enters the ready list.
//!
//! Every transition is narrated to the attached observers as a typed
//! [`SimEvent`]; every constant-current stretch of every PE as a slice (see
//! [`crate::event`]). The battery, when mounted, lives *inside* the engine:
//! it absorbs each summed-current segment as it elapses, and its
//! scheduler-visible digest — a [`BatteryView`] — is refreshed on
//! [`SimState`] before the next decision, so governors and policies can
//! react to state-of-charge (see `bas_dvs::SocFloor` for the canonical
//! battery-aware governor).

use crate::calendar::CalendarEvent;
use crate::error::SimError;
use crate::event::{SimEvent, SliceInfo};
use crate::metrics::Metrics;
use crate::observer::{MetricsCollector, SimObserver, TraceRecorder};
use crate::state::{BatteryView, SimState};
use crate::time;
use crate::trace::{SliceKind, Trace};
use crate::traits::{FrequencyGovernor, TaskPolicy};
use crate::types::TaskRef;
use crate::workload::ActualSampler;
use bas_battery::{BatteryModel, LifetimeReport, StepOutcome};
use bas_cpu::{FreqPolicy, Platform, Processor, Realization};
use bas_taskgraph::{Mapping, TaskSet};

/// What to do when an instance is still unfinished at its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlineMode {
    /// Abort the simulation with [`SimError::DeadlineMiss`] — the right mode
    /// for experiments, where every scheduler is supposed to be miss-free.
    #[default]
    Fail,
    /// Record the miss (as a [`SimEvent::DeadlineMiss`]), drop the stale
    /// instance, release the new one. Useful for deliberately-overloaded
    /// what-if runs.
    DropAndCount,
}

/// Static configuration of a simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The execution platform (one or more DVS processing elements over a
    /// shared battery).
    pub platform: Platform,
    /// How continuous `fref` maps onto discrete operating points.
    pub freq_policy: FreqPolicy,
    /// Deadline-miss behaviour.
    pub deadline_mode: DeadlineMode,
    /// Mount the built-in [`TraceRecorder`] (costs memory on long runs;
    /// metrics and battery accounting are always exact regardless — stream
    /// through a [`crate::JsonlWriter`] for O(1)-memory exports).
    pub record_trace: bool,
    /// Reject task sets that are over-utilized or structurally infeasible
    /// before running.
    pub check_feasibility: bool,
}

impl SimConfig {
    /// Config for the paper's uniprocessor setting: `processor` becomes a
    /// 1-PE [`Platform`], with all defaults (interpolated frequencies, fail
    /// on miss, trace recording on, feasibility checked).
    pub fn new(processor: Processor) -> Self {
        SimConfig::with_platform(Platform::single(processor))
    }

    /// Config over an explicit multi-PE platform, same defaults.
    pub fn with_platform(platform: Platform) -> Self {
        SimConfig {
            platform,
            freq_policy: FreqPolicy::Interpolate,
            deadline_mode: DeadlineMode::Fail,
            record_trace: true,
            check_feasibility: true,
        }
    }
}

/// Everything a finished simulation hands back. Produced by
/// [`Simulation::finish`], which **moves** the accumulated trace and metrics
/// out of the engine — nothing is cloned.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Aggregate counters and integrals.
    pub metrics: Metrics,
    /// The execution trace when `record_trace` was set.
    pub trace: Option<Trace>,
    /// Battery lifetime report when a battery was mounted.
    pub battery: Option<LifetimeReport>,
}

/// How one [`Simulation::step`] (or a whole [`Simulation::run_until`])
/// ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The simulation advanced and can continue.
    Advanced,
    /// The clock reached the requested limit; more stepping is possible with
    /// a later limit.
    LimitReached,
    /// The mounted battery is exhausted; the simulation is over (further
    /// steps keep reporting this).
    BatteryExhausted,
}

/// One PE's committed pick for the upcoming execution stretch.
struct Plan {
    task: TaskRef,
    realization: Realization,
    rem_actual: f64,
    dur_complete: f64,
}

/// The memoized phase-1 consult of one PE, valid while the pair's inputs
/// are unchanged (see [`FrequencyGovernor::event_driven`]): `stamp` is the
/// `(consult_epoch, ready_epoch)` the pair was last consulted under.
#[derive(Clone, Copy)]
struct ConsultCache {
    stamp: Option<(u64, u64)>,
    fref: f64,
    pick: Option<TaskRef>,
}

impl ConsultCache {
    fn empty() -> Self {
        ConsultCache { stamp: None, fref: 0.0, pick: None }
    }
}

/// One constant-current stretch of one PE within a step.
#[derive(Clone, Copy)]
struct Leg {
    duration: f64,
    current: f64,
    /// Cycles credited per second of wall clock (0 while idle).
    rate: f64,
    kind: SliceKind,
}

/// The stepped simulation lifecycle binding a task set, per-PE governors
/// and policies, a sampler, an optional battery and any number of
/// observers.
///
/// ```
/// use bas_sim::policy::EdfTopo;
/// use bas_sim::{MaxSpeed, SimConfig, Simulation, Step, WorstCase};
/// use bas_cpu::presets::unit_processor;
/// use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder, TaskSet};
///
/// let mut b = TaskGraphBuilder::new("T0");
/// b.add_node("t", 4);
/// let mut set = TaskSet::new();
/// set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
///
/// let (mut g, mut p, mut s) = (MaxSpeed, EdfTopo, WorstCase);
/// let mut sim =
///     Simulation::new(set, SimConfig::new(unit_processor()), &mut g, &mut p, &mut s).unwrap();
/// // Step to the first completion, inspect live state, then run out the
/// // horizon — the lifecycle the old run-to-completion API could not express.
/// sim.step().unwrap();
/// assert!(sim.state().now() > 0.0);
/// assert_eq!(sim.run_until(10.0).unwrap(), Step::LimitReached);
/// let outcome = sim.finish();
/// assert_eq!(outcome.metrics.instances_completed, 1);
/// ```
pub struct Simulation<'a> {
    cfg: SimConfig,
    state: SimState,
    governors: Vec<&'a mut dyn FrequencyGovernor>,
    policies: Vec<&'a mut dyn TaskPolicy>,
    sampler: &'a mut dyn ActualSampler,
    battery: Option<&'a mut dyn BatteryModel>,
    observers: Vec<&'a mut dyn SimObserver>,
    metrics: MetricsCollector,
    recorder: Option<TraceRecorder>,
    exhausted: bool,
    // ---- consult-skip machinery (dirty-flag re-consultation) ------------
    /// Bumped on every release, abandon and completion — the global half of
    /// the "did this PE's consult inputs change?" stamp.
    consult_epoch: u64,
    /// Whether `governors[pe]` **and** `policies[pe]` both declared
    /// themselves event-driven (precomputed; the pair never changes).
    consult_skippable: Vec<bool>,
    consult_cache: Vec<ConsultCache>,
    // ---- per-step scratch (reused to keep the hot loop allocation-free) --
    ready_pe: Vec<TaskRef>,
    plans: Vec<Option<Plan>>,
    lanes: Vec<Vec<Leg>>,
    cursor: Vec<usize>,
    cycles: Vec<f64>,
    advanced: Vec<f64>,
    /// Sampled actuals of the instance being released (refilled per release).
    actuals: Vec<f64>,
}

impl<'a> Simulation<'a> {
    /// Bind a uniprocessor simulation (the paper's setting): one governor,
    /// one policy, everything mapped to PE 0. Fails fast on infeasible
    /// input when configured to.
    pub fn new(
        set: TaskSet,
        cfg: SimConfig,
        governor: &'a mut dyn FrequencyGovernor,
        policy: &'a mut dyn TaskPolicy,
        sampler: &'a mut dyn ActualSampler,
    ) -> Result<Self, SimError> {
        let mapping = Mapping::single_pe(&set);
        Simulation::with_platform(set, mapping, cfg, vec![governor], vec![policy], sampler)
    }

    /// Bind a multi-PE simulation: one governor and one policy per
    /// processing element (index-aligned with the platform), and a
    /// [`Mapping`] pinning every node to its PE. Fails fast on bank/shape
    /// mismatches and (when configured) on per-PE overutilization or
    /// structural infeasibility.
    pub fn with_platform(
        set: TaskSet,
        mapping: Mapping,
        cfg: SimConfig,
        governors: Vec<&'a mut dyn FrequencyGovernor>,
        policies: Vec<&'a mut dyn TaskPolicy>,
        sampler: &'a mut dyn ActualSampler,
    ) -> Result<Self, SimError> {
        if set.is_empty() {
            return Err(SimError::EmptyTaskSet);
        }
        let pes = cfg.platform.len();
        if governors.len() != pes || policies.len() != pes {
            return Err(SimError::BankMismatch {
                governors: governors.len(),
                policies: policies.len(),
                pes,
            });
        }
        mapping.validate(&set, pes).map_err(|e| SimError::InvalidMapping(e.to_string()))?;
        // A narrower mapping (e.g. everything on PE 0) is legal on a wider
        // platform; widen it so the per-PE state vectors cover every
        // element the engine will consult.
        let mut mapping = mapping;
        mapping.pad_to(pes);
        if cfg.check_feasibility {
            if pes == 1 {
                let fmax = cfg.platform.pe(0).fmax();
                let u = set.utilization(fmax);
                if u > 1.0 + 1e-9 {
                    return Err(SimError::Overutilized { utilization: u });
                }
                for (gid, g) in set.iter() {
                    if !g.is_structurally_feasible(fmax) {
                        return Err(SimError::StructurallyInfeasible { graph: gid.index() });
                    }
                }
            } else {
                for pe in 0..pes {
                    let fmax_pe = cfg.platform.pe(pe).fmax();
                    let u: f64 = set
                        .iter()
                        .map(|(gid, pg)| {
                            mapping.static_cycles_on(&set, gid, pe) as f64 / (pg.period() * fmax_pe)
                        })
                        .sum();
                    if u > 1.0 + 1e-9 {
                        return Err(SimError::OverutilizedPe { pe, utilization: u });
                    }
                }
                // Necessary condition only: a chain must at least fit at
                // the fastest element (cross-PE blocking can still bite at
                // run time, where it surfaces as a deadline miss).
                let fmax_any = cfg.platform.fmax_any();
                for (gid, g) in set.iter() {
                    if !g.is_structurally_feasible(fmax_any) {
                        return Err(SimError::StructurallyInfeasible { graph: gid.index() });
                    }
                }
            }
        }
        let metrics = MetricsCollector::new(cfg.platform.vbat());
        let recorder = cfg.record_trace.then(|| TraceRecorder::with_lanes(pes));
        let total_nodes = set.total_nodes();
        let max_nodes = set.iter().map(|(_, pg)| pg.graph().node_count()).max().unwrap_or(0);
        let mut state = SimState::with_mapping(set, mapping);
        state.set_transfer(cfg.platform.interconnect());
        let consult_skippable = governors
            .iter()
            .zip(policies.iter())
            .map(|(g, p)| g.event_driven() && p.event_driven())
            .collect();
        Ok(Simulation {
            state,
            cfg,
            governors,
            policies,
            sampler,
            battery: None,
            observers: Vec::new(),
            metrics,
            recorder,
            exhausted: false,
            consult_epoch: 0,
            consult_skippable,
            consult_cache: vec![ConsultCache::empty(); pes],
            ready_pe: Vec::with_capacity(total_nodes),
            plans: (0..pes).map(|_| None).collect(),
            lanes: vec![Vec::with_capacity(2); pes],
            cursor: vec![0; pes],
            cycles: vec![0.0; pes],
            advanced: vec![0.0; pes],
            actuals: Vec::with_capacity(max_nodes),
        })
    }

    /// Mount `battery` inside the engine: every emitted segment discharges
    /// it with the platform's **summed** current, its exhaustion ends the
    /// simulation, and its scheduler-visible [`BatteryView`] appears on
    /// [`SimState::battery`] from now on. Mount before stepping; the caller
    /// keeps ownership and can read the model back after
    /// [`Simulation::finish`].
    pub fn mount_battery(&mut self, battery: &'a mut dyn BatteryModel) -> &mut Self {
        self.state.set_battery_view(Some(BatteryView::of(battery)));
        self.battery = Some(battery);
        self
    }

    /// Attach an observer; every [`SimEvent`] and slice from now on is
    /// fanned out to it (attach before stepping to see the whole stream).
    pub fn attach(&mut self, observer: &'a mut dyn SimObserver) -> &mut Self {
        self.observers.push(observer);
        self
    }

    /// The live scheduler-visible state.
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// The metrics accumulated so far (finish moves them out).
    pub fn metrics(&self) -> &Metrics {
        self.metrics.metrics()
    }

    /// The next occurrence on the engine's event calendar: the earliest of
    /// an instance release, an in-flight transfer arrival and — mid-step —
    /// a committed completion or battery-leg boundary, under the engine's
    /// deterministic tie-break (time, then kind, then graph/PE index).
    /// Between steps only the persistent kinds are scheduled, so this
    /// reports what bounds the *next* step; `None` once nothing is left.
    ///
    /// ```
    /// # use bas_sim::policy::EdfTopo;
    /// # use bas_sim::{CalendarEvent, MaxSpeed, SimConfig, Simulation, WorstCase};
    /// # use bas_cpu::presets::unit_processor;
    /// # use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder, TaskSet};
    /// # let mut b = TaskGraphBuilder::new("T0");
    /// # b.add_node("t", 4);
    /// # let mut set = TaskSet::new();
    /// # set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
    /// # let (mut g, mut p, mut s) = (MaxSpeed, EdfTopo, WorstCase);
    /// # let mut sim =
    /// #     Simulation::new(set, SimConfig::new(unit_processor()), &mut g, &mut p, &mut s).unwrap();
    /// // Before the first step, the calendar holds the first release at t=0.
    /// assert!(matches!(sim.next_event(), Some(CalendarEvent::Release { t, .. }) if t == 0.0));
    /// ```
    pub fn next_event(&self) -> Option<CalendarEvent> {
        self.state.calendar().next_event(self.state.now())
    }

    /// Advance by one engine iteration (process due releases, take one
    /// scheduling decision per PE, execute to the next event boundary),
    /// unbounded in time.
    pub fn step(&mut self) -> Result<Step, SimError> {
        self.step_until(f64::INFINITY)
    }

    /// Like [`Simulation::step`], but slices are truncated at `limit` and
    /// [`Step::LimitReached`] is returned once the clock is there (`limit`
    /// is exclusive: events at exactly `limit` are not processed).
    pub fn step_until(&mut self, limit: f64) -> Result<Step, SimError> {
        if self.exhausted {
            return Ok(Step::BatteryExhausted);
        }
        let t = self.state.now();
        if time::approx_ge(t, limit) {
            return Ok(Step::LimitReached);
        }
        self.process_releases(t)?;
        let mut t_next = self.state.next_release_any();
        if self.state.transfer().is_some() {
            // Successors whose cross-PE payload has landed become ready;
            // in-flight arrivals bound the step like a release would.
            self.state.promote_pending(t);
            t_next = t_next.min(self.state.next_pending_any());
        }
        let t_next = t_next.min(limit);
        let pes = self.governors.len();

        // ---- Phase 1: one scheduling decision per PE, in PE order. ------
        for pe in 0..pes {
            self.plans[pe] = None;
            self.state.calendar_mut().set_completion(pe, f64::INFINITY);
            // The PE's ready queue is maintained incrementally by the state
            // (partitioned at release/unlock/promotion time); copy it out so
            // the consults below can re-borrow the state.
            self.ready_pe.clear();
            self.ready_pe.extend_from_slice(self.state.ready_on(pe));
            let fmin = self.cfg.platform.pe(pe).fmin();
            let fmax = self.cfg.platform.pe(pe).fmax();
            let stamp = (self.consult_epoch, self.state.ready_epoch(pe));
            let cached = if self.consult_skippable[pe] && !self.ready_pe.is_empty() {
                self.consult_cache[pe].stamp == Some(stamp)
            } else {
                false
            };
            // Governor first (fref feeds the policy's feasibility checks).
            let fref = if self.ready_pe.is_empty() {
                fmin // nothing to run on this PE; value is irrelevant
            } else if cached {
                // Both halves are event-driven and nothing they may read
                // changed since the cached consult: replay its `fref`.
                self.consult_cache[pe].fref
            } else {
                self.state.set_scope(Some(pe));
                let f = self.governors[pe].frequency(&self.state).clamp(fmin, fmax);
                self.state.set_scope(None);
                f
            };
            if !self.ready_pe.is_empty() && self.state.fref_on(pe) != Some(fref) {
                self.dispatch_event(SimEvent::FreqChange { t, pe, fref });
                self.state.set_fref(pe, fref);
            }
            let pick = if self.ready_pe.is_empty() {
                None
            } else if cached {
                self.consult_cache[pe].pick
            } else {
                self.state.set_scope(Some(pe));
                let pick = self.policies[pe].pick(&self.state, &self.ready_pe, fref);
                self.state.set_scope(None);
                if self.consult_skippable[pe] {
                    self.consult_cache[pe] = ConsultCache { stamp: Some(stamp), fref, pick };
                }
                pick
            };
            self.dispatch_event(SimEvent::Decision { t, pe, fref, picked: pick });
            let Some(task) = pick else { continue };
            if self.ready_pe.binary_search(&task).is_err() {
                return Err(SimError::InvalidPick { task });
            }
            if let Some(prev) = self.state.running_on(pe) {
                if prev != task && self.state.remaining_wc_node(prev) > 0.0 {
                    self.dispatch_event(SimEvent::Preempt { t, pe, task: prev, by: task });
                }
            }
            let rem_actual =
                self.state.graph_ref(task.graph).nodes[task.node.index()].remaining_actual();
            let realization = self.cfg.platform.pe(pe).realize(fref, self.cfg.freq_policy);
            let dur_complete = rem_actual / realization.average_frequency;
            if time::negligible(dur_complete) {
                // Residual below time resolution: complete in place and
                // re-open the scheduling point — every PE re-decides at the
                // same clock next step. Re-issuing a Decision at an
                // unchanged `t` after an in-place completion is the
                // historical uniprocessor semantic (`decisions` counts
                // policy invocations, and these ran); on several PEs it
                // extends to the other elements' discarded plans.
                self.complete_if_done(pe, task, rem_actual, t);
                self.state.calendar_mut().clear_step_entries();
                return Ok(Step::Advanced);
            }
            self.state.calendar_mut().set_completion(pe, dur_complete);
            self.plans[pe] = Some(Plan { task, realization, rem_actual, dur_complete });
        }

        // ---- Phase 2: the global step length — the earliest completion
        // across PEs (the calendar's completion root), capped at the next
        // release boundary. ----------------------------------------------
        let slack_to_event = t_next - t;
        let busy_min = self.state.calendar().next_completion();
        let any_busy = busy_min.is_finite();
        let dt = if any_busy && busy_min <= slack_to_event + time::eps_for(t_next) {
            busy_min
        } else {
            slack_to_event
        };
        if time::negligible(dt) {
            // Release boundary reached; go process it.
            self.state.calendar_mut().clear_step_entries();
            self.state.set_now(t_next);
            return Ok(Step::Advanced);
        }

        // Start (or resume) notifications, in PE order, before execution.
        for pe in 0..pes {
            if let Some(plan) = &self.plans[pe] {
                if self.state.running_on(pe) != Some(plan.task) {
                    let event = SimEvent::Start {
                        t,
                        pe,
                        task: plan.task,
                        frequency: plan.realization.average_frequency,
                    };
                    self.dispatch_event(event);
                }
            }
        }

        // ---- Phase 3: execute dt on every PE. Each busy PE runs its
        // high-frequency leg first, then low (locally non-increasing
        // current within the slice); idle PEs draw their idle current. The
        // battery absorbs the union of all leg boundaries as summed-current
        // segments. ------------------------------------------------------
        for pe in 0..pes {
            self.lanes[pe].clear();
            self.cycles[pe] = 0.0;
            self.advanced[pe] = 0.0;
            match &self.plans[pe] {
                None => {
                    let proc = self.cfg.platform.pe(pe);
                    self.lanes[pe].push(Leg {
                        duration: dt,
                        current: proc.supply().idle_current,
                        rate: 0.0,
                        kind: SliceKind::Idle,
                    });
                }
                Some(plan) => {
                    let proc = self.cfg.platform.pe(pe);
                    let r = &plan.realization;
                    let mut push = |opp_ix: usize, leg_dt: f64| {
                        if time::negligible(leg_dt) {
                            return;
                        }
                        let opp = proc.opps().get(opp_ix);
                        self.lanes[pe].push(Leg {
                            duration: leg_dt,
                            current: proc.battery_current_at(opp_ix),
                            rate: opp.frequency,
                            kind: SliceKind::Run {
                                task: plan.task,
                                opp: opp_ix,
                                frequency: opp.frequency,
                            },
                        });
                    };
                    match r.hi {
                        Some(hi) => {
                            push(hi.opp, dt * hi.time_fraction);
                            push(r.lo.opp, dt * r.lo.time_fraction);
                        }
                        None => push(r.lo.opp, dt),
                    }
                }
            }
            self.cursor[pe] = 0;
            // Key the PE's battery-leg boundary on the calendar (exhausted
            // lanes sit at infinity and never win the root).
            let first = self.lanes[pe].first().map_or(f64::INFINITY, |l| l.duration);
            self.state.calendar_mut().set_leg(pe, first);
        }

        let mut elapsed = 0.0;
        let mut died_at: Option<f64> = None;
        loop {
            // The next segment runs until the earliest leg boundary — the
            // calendar's battery-leg root.
            let seg = self.state.calendar().next_leg();
            if !seg.is_finite() {
                break;
            }
            let start = t + elapsed;
            let mut total_current = 0.0;
            for pe in 0..pes {
                if self.cursor[pe] < self.lanes[pe].len() {
                    total_current += self.lanes[pe][self.cursor[pe]].current;
                }
            }
            // Battery first (it may truncate the segment).
            let mut slice_dt = seg;
            if let Some(b) = self.battery.as_deref_mut() {
                match b.step(total_current, seg) {
                    StepOutcome::Alive => {}
                    StepOutcome::Exhausted { survived } => {
                        slice_dt = survived;
                        died_at = Some(start + survived);
                    }
                }
            }
            let view = self.battery.as_deref().map(BatteryView::of);
            if view.is_some() {
                self.state.set_battery_view(view);
            }
            // Credited wall clock: what the slice end works out to from the
            // segment start (the historical accounting arithmetic).
            let credited = match died_at {
                Some(stop) => stop - start,
                None => seg,
            };
            for pe in 0..pes {
                if self.cursor[pe] >= self.lanes[pe].len() {
                    continue;
                }
                let leg = self.lanes[pe][self.cursor[pe]];
                self.dispatch_slice(SliceInfo {
                    pe,
                    start,
                    duration: slice_dt,
                    current: leg.current,
                    kind: leg.kind,
                });
                self.cycles[pe] += leg.rate * credited;
                self.advanced[pe] += credited;
            }
            if let Some(v) = view {
                self.dispatch_event(SimEvent::BatteryStep {
                    t: start + slice_dt,
                    state_of_charge: v.state_of_charge,
                    charge_delivered: v.charge_delivered,
                    exhausted: v.exhausted,
                });
            }
            elapsed += credited;
            if died_at.is_some() {
                break;
            }
            for pe in 0..pes {
                if self.cursor[pe] >= self.lanes[pe].len() {
                    continue;
                }
                let rem = self.state.calendar().leg_of(pe);
                if rem <= seg {
                    self.cursor[pe] += 1;
                    let next =
                        self.lanes[pe].get(self.cursor[pe]).map_or(f64::INFINITY, |l| l.duration);
                    self.state.calendar_mut().set_leg(pe, next);
                } else {
                    self.state.calendar_mut().set_leg(pe, rem - seg);
                }
            }
        }
        // Completion and leg entries are step-scoped: drop them so a
        // between-steps [`Simulation::next_event`] only reports the
        // persistent kinds (releases, in-flight transfer arrivals).
        self.state.calendar_mut().clear_step_entries();

        // ---- Phase 4: per-PE accounting events, in PE order. ------------
        for pe in 0..pes {
            match &self.plans[pe] {
                Some(plan) => {
                    let event = SimEvent::Progress {
                        t,
                        pe,
                        task: plan.task,
                        cycles: self.cycles[pe].min(plan.rem_actual),
                        busy: self.advanced[pe],
                    };
                    self.dispatch_event(event);
                }
                None => {
                    let duration = if died_at.is_some() { self.advanced[pe] } else { dt };
                    self.dispatch_event(SimEvent::Idle { t, pe, duration });
                }
            }
        }

        if let Some(died_stop) = died_at {
            for pe in 0..pes {
                if let Some(plan) = &self.plans[pe] {
                    self.state.advance(plan.task, self.cycles[pe].min(plan.rem_actual));
                }
            }
            // The historical engine clocked a dying busy quantum by its
            // credited wall time and a dying idle stretch by the battery's
            // own stop time; keep both arithmetics exactly.
            self.state.set_now(if any_busy { t + elapsed } else { died_stop });
            self.exhausted = true;
            return Ok(Step::BatteryExhausted);
        }

        // ---- Phase 5: commit progress and completions, in PE order. -----
        for pe in 0..pes {
            match self.plans[pe].take() {
                Some(plan) => {
                    self.state.set_running(pe, Some(plan.task));
                    let completing = plan.dur_complete <= dt + time::eps_for(t_next);
                    if completing {
                        self.complete_if_done(pe, plan.task, plan.rem_actual, t + dt);
                    } else {
                        self.state.advance(plan.task, self.cycles[pe].min(plan.rem_actual - 1e-3));
                    }
                }
                None => self.state.set_running(pe, None),
            }
        }
        if any_busy {
            self.state.set_now(t + dt);
        } else {
            self.state.set_now(t_next);
        }
        Ok(Step::Advanced)
    }

    /// Run until the clock reaches `limit` (exclusive) or the mounted
    /// battery is exhausted, whichever comes first.
    pub fn run_until(&mut self, limit: f64) -> Result<Step, SimError> {
        if !(limit.is_finite() && limit > 0.0) {
            return Err(SimError::InvalidHorizon(limit));
        }
        loop {
            match self.step_until(limit)? {
                Step::Advanced => continue,
                end => return Ok(end),
            }
        }
    }

    /// End the lifecycle: **move** the accumulated metrics and trace out
    /// and, when a battery was mounted, derive its [`LifetimeReport`] (the
    /// two columns of the paper's Table 2).
    pub fn finish(self) -> SimOutcome {
        let battery = self.battery.map(|b| LifetimeReport {
            lifetime: self.state.now(),
            charge_delivered: b.charge_delivered(),
            died: b.is_exhausted(),
        });
        SimOutcome {
            metrics: self.metrics.into_metrics(),
            trace: self.recorder.map(TraceRecorder::into_trace),
            battery,
        }
    }

    // ------------------------------------------------------------------

    /// Process all releases due at or before the current time.
    ///
    /// O(1) when nothing is due: the calendar's release root bounds every
    /// graph's next release, and `approx_le` is monotone in its first
    /// argument, so a root that is still in the future clears the whole set.
    fn process_releases(&mut self, t: f64) -> Result<(), SimError> {
        if !time::approx_le(self.state.next_release_any(), t) {
            return Ok(());
        }
        for index in 0..self.state.set().len() {
            let gid = bas_taskgraph::GraphId::from_index(index);
            while time::approx_le(self.state.next_release(gid), t) {
                self.consult_epoch += 1;
                if self.state.is_active(gid) {
                    // Deadline == release time of the next instance.
                    let deadline = self.state.deadline(gid).expect("active");
                    match self.cfg.deadline_mode {
                        DeadlineMode::Fail => {
                            return Err(SimError::DeadlineMiss { graph: gid.index(), deadline });
                        }
                        DeadlineMode::DropAndCount => {
                            self.dispatch_event(SimEvent::DeadlineMiss { t, graph: gid, deadline });
                            self.state.abandon(gid);
                        }
                    }
                }
                let release_t = self.state.next_release(gid);
                let instance = self.state.graph_ref(gid).next_instance;
                self.actuals.clear();
                {
                    let graph = self.state.set()[gid].graph();
                    for n in graph.node_ids() {
                        self.actuals.push(self.sampler.sample(gid, n, instance, graph.wcet(n)));
                    }
                }
                self.state.release_from(gid, &self.actuals);
                self.state.refresh_edf();
                let deadline = self.state.deadline(gid).expect("just released");
                self.dispatch_event(SimEvent::Release {
                    t: release_t,
                    graph: gid,
                    instance,
                    deadline,
                });
                for pe in 0..self.governors.len() {
                    self.state.set_scope(Some(pe));
                    self.governors[pe].on_release(&self.state, gid);
                }
                self.state.set_scope(None);
            }
        }
        self.state.refresh_edf();
        Ok(())
    }

    /// Mark `task` complete after having run its full actual demand at time
    /// `t_complete` on `pe`, and fire the completion hooks.
    fn complete_if_done(&mut self, pe: usize, task: TaskRef, rem_actual: f64, t_complete: f64) {
        // A completion changes `WCi` (and possibly the active set), so every
        // event-driven consult memo is stale from here on.
        self.consult_epoch += 1;
        let actual = self
            .state
            .advance_at(task, rem_actual, t_complete)
            .expect("executing the full remaining actual must complete the node");
        let instance_done = !self.state.is_active(task.graph);
        self.state.refresh_edf();
        self.dispatch_event(SimEvent::Complete { t: t_complete, pe, task, actual, instance_done });
        self.state.set_running(pe, None);
        self.state.set_scope(Some(pe));
        self.governors[pe].on_completion(&self.state, task, actual);
        self.policies[pe].on_completion(&self.state, task, actual);
        self.state.set_scope(None);
    }

    fn dispatch_event(&mut self, event: SimEvent) {
        self.metrics.on_event(&self.state, &event);
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.on_event(&self.state, &event);
        }
        for observer in self.observers.iter_mut() {
            observer.on_event(&self.state, &event);
        }
    }

    fn dispatch_slice(&mut self, slice: SliceInfo) {
        self.metrics.on_slice(&self.state, &slice);
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.on_slice(&self.state, &slice);
        }
        for observer in self.observers.iter_mut() {
            observer.on_slice(&self.state, &slice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EdfTopo;
    use crate::traits::MaxSpeed;
    use crate::workload::{FixedFraction, WorstCase};
    use bas_battery::IdealModel;
    use bas_cpu::presets::unit_processor;
    use bas_cpu::Interconnect;
    use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn single_task_set(wc: u64, period: f64) -> TaskSet {
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("t", wc);
        let mut set = TaskSet::new();
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), period).unwrap());
        set
    }

    fn chain_set() -> TaskSet {
        // T0: a(2) -> b(3), period 10; T1: c(2), period 5. U = 0.5 + 0.4 = 0.9.
        let mut b = TaskGraphBuilder::new("T0");
        let a = b.add_node("a", 2);
        let c = b.add_node("b", 3);
        b.add_edge(a, c).unwrap();
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("c", 2);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 5.0).unwrap();
        let mut set = TaskSet::new();
        set.push(g0);
        set.push(g1);
        set
    }

    fn cfg() -> SimConfig {
        SimConfig::new(unit_processor())
    }

    /// Run to `horizon` and finish — the old `run_for` in two calls.
    fn run_for(
        set: TaskSet,
        cfg: SimConfig,
        governor: &mut dyn FrequencyGovernor,
        policy: &mut dyn TaskPolicy,
        sampler: &mut dyn ActualSampler,
        horizon: f64,
    ) -> Result<SimOutcome, SimError> {
        let mut sim = Simulation::new(set, cfg, governor, policy, sampler)?;
        sim.run_until(horizon)?;
        Ok(sim.finish())
    }

    #[test]
    fn empty_set_is_rejected() {
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let err = Simulation::new(TaskSet::new(), cfg(), &mut g, &mut p, &mut s).err().unwrap();
        assert_eq!(err, SimError::EmptyTaskSet);
    }

    #[test]
    fn overutilized_set_is_rejected() {
        let set = single_task_set(20, 10.0); // U = 2
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let err = Simulation::new(set, cfg(), &mut g, &mut p, &mut s).err().unwrap();
        assert!(matches!(err, SimError::Overutilized { .. }));
    }

    #[test]
    fn single_task_at_fmax_completes_and_idles() {
        let set = single_task_set(4, 10.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 10.0).unwrap();
        let m = &out.metrics;
        assert_eq!(m.instances_released, 1);
        assert_eq!(m.instances_completed, 1);
        assert_eq!(m.nodes_completed, 1);
        assert!((m.busy_time - 4.0).abs() < 1e-9, "4 cycles at f=1");
        assert!((m.idle_time - 6.0).abs() < 1e-9);
        assert_eq!(m.deadline_misses, 0);
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
        assert!((trace.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn actual_fraction_shortens_execution() {
        let set = single_task_set(4, 10.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = FixedFraction::new(0.5);
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 10.0).unwrap();
        assert!((out.metrics.busy_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn precedence_is_respected_in_trace() {
        let set = chain_set();
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 10.0).unwrap();
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
        // T0.b must never run before T0.a completes: in execution order, a
        // precedes b.
        let order = trace.execution_order();
        let pos = |t: TaskRef| order.iter().position(|&x| x == t).expect("both ran");
        use bas_taskgraph::{GraphId, NodeId};
        let a = TaskRef::new(GraphId::from_index(0), NodeId::from_index(0));
        let b = TaskRef::new(GraphId::from_index(0), NodeId::from_index(1));
        assert!(pos(a) < pos(b));
        assert_eq!(out.metrics.deadline_misses, 0);
    }

    #[test]
    fn periodic_releases_recur() {
        let set = single_task_set(2, 5.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 20.0).unwrap();
        assert_eq!(out.metrics.instances_released, 4);
        assert_eq!(out.metrics.instances_completed, 4);
        assert!((out.metrics.busy_time - 8.0).abs() < 1e-9);
    }

    #[test]
    fn battery_death_cuts_the_run() {
        let set = single_task_set(5, 10.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut sim = Simulation::new(set, cfg(), &mut g, &mut p, &mut s).unwrap();
        // unit_processor full-speed draw is 1.8 A; 9 C dies after 5 s busy.
        let mut battery = IdealModel::new(9.0);
        sim.mount_battery(&mut battery);
        assert_eq!(sim.run_until(1e6).unwrap(), Step::BatteryExhausted);
        // The engine stays exhausted: further steps are no-ops.
        assert_eq!(sim.step().unwrap(), Step::BatteryExhausted);
        let out = sim.finish();
        let report = out.battery.unwrap();
        assert!(report.died);
        assert!(report.lifetime > 0.0 && report.lifetime < 20.0);
        assert!((report.charge_delivered - 9.0).abs() < 1e-6);
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
    }

    #[test]
    fn deadline_miss_fails_or_counts_by_mode() {
        // Worst case 5 every 5 at fmax=1 is exactly feasible; make it
        // infeasible by idling: use a policy that refuses to run.
        struct Lazy;
        impl TaskPolicy for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn pick(&mut self, _: &SimState, _: &[TaskRef], _: f64) -> Option<TaskRef> {
                None
            }
        }
        let mut g = MaxSpeed;
        let mut s = WorstCase;
        // Fail mode:
        let mut p = Lazy;
        let err =
            run_for(single_task_set(5, 5.0), cfg(), &mut g, &mut p, &mut s, 20.0).unwrap_err();
        assert!(matches!(err, SimError::DeadlineMiss { .. }));
        // Lenient mode:
        let mut cfg2 = cfg();
        cfg2.deadline_mode = DeadlineMode::DropAndCount;
        let mut p = Lazy;
        let mut g = MaxSpeed;
        let mut s = WorstCase;
        let out = run_for(single_task_set(5, 5.0), cfg2, &mut g, &mut p, &mut s, 20.0).unwrap();
        assert!(out.metrics.deadline_misses >= 3);
        assert_eq!(out.metrics.nodes_completed, 0);
    }

    #[test]
    fn invalid_pick_is_rejected() {
        struct Rogue;
        impl TaskPolicy for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn pick(&mut self, _: &SimState, _: &[TaskRef], _: f64) -> Option<TaskRef> {
                use bas_taskgraph::{GraphId, NodeId};
                Some(TaskRef::new(GraphId::from_index(0), NodeId::from_index(7)))
            }
        }
        let mut g = MaxSpeed;
        let mut p = Rogue;
        let mut s = WorstCase;
        let err =
            run_for(single_task_set(2, 10.0), cfg(), &mut g, &mut p, &mut s, 10.0).unwrap_err();
        assert!(matches!(err, SimError::InvalidPick { .. }));
    }

    #[test]
    fn invalid_horizon_is_rejected() {
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut sim =
            Simulation::new(single_task_set(2, 10.0), cfg(), &mut g, &mut p, &mut s).unwrap();
        assert!(sim.run_until(0.0).is_err());
        assert!(sim.run_until(f64::NAN).is_err());
    }

    #[test]
    fn charge_accounting_matches_trace_integral() {
        let set = chain_set();
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 10.0).unwrap();
        let profile = out.trace.as_ref().unwrap().to_load_profile();
        assert!(
            (profile.total_charge() - out.metrics.charge).abs() < 1e-9,
            "trace integral {} vs metrics {}",
            profile.total_charge(),
            out.metrics.charge
        );
    }

    #[test]
    fn preemption_on_release_is_counted() {
        // T0 runs 8 cycles over period 20; T1 (period 5, wc 1) preempts it.
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("long", 8);
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("short", 1);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 5.0).unwrap();
        let mut set = TaskSet::new();
        set.push(g0);
        set.push(g1);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let out = run_for(set, cfg(), &mut g, &mut p, &mut s, 20.0).unwrap();
        assert!(out.metrics.preemptions >= 1, "{:?}", out.metrics);
        assert_eq!(out.metrics.deadline_misses, 0);
    }

    #[test]
    fn stepping_in_pieces_matches_one_run() {
        // run_until(5) → run_until(12.5) → run_until(20) must execute the
        // same schedule as one run_until(20). A split limit inserts an extra
        // scheduling point (one more decision, float round-off at the cut),
        // but under a deterministic governor/policy nothing else may change.
        let run = |splits: &[f64]| {
            let mut g = MaxSpeed;
            let mut p = EdfTopo;
            let mut s = FixedFraction::new(0.7);
            let mut sim = Simulation::new(chain_set(), cfg(), &mut g, &mut p, &mut s).unwrap();
            for &limit in splits {
                assert_eq!(sim.run_until(limit).unwrap(), Step::LimitReached);
            }
            sim.finish()
        };
        let whole = run(&[20.0]);
        let pieces = run(&[5.0, 12.5, 20.0]);
        let (a, b) = (&whole.metrics, &pieces.metrics);
        assert_eq!(a.nodes_completed, b.nodes_completed);
        assert_eq!(a.instances_released, b.instances_released);
        assert_eq!(a.instances_completed, b.instances_completed);
        assert_eq!(a.preemptions, b.preemptions);
        assert!(b.decisions >= a.decisions, "splits only add scheduling points");
        assert!((a.busy_time - b.busy_time).abs() < 1e-9);
        assert!((a.charge - b.charge).abs() < 1e-9);
        assert!((a.energy - b.energy).abs() < 1e-9);
        let (ta, tb) = (whole.trace.unwrap(), pieces.trace.unwrap());
        assert_eq!(ta.execution_order(), tb.execution_order());
        assert_eq!(ta.len(), tb.len(), "cut slices must re-merge in the trace");
    }

    #[test]
    fn event_driven_pair_skips_redundant_consults() {
        // A limit cut re-opens the scheduling point without any release,
        // completion or ready-queue change: an event-driven pair must be
        // replayed from the consult cache, not re-consulted — while the
        // emitted schedule stays identical to the always-consult run.
        struct CountingGov(u32);
        impl FrequencyGovernor for CountingGov {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn frequency(&mut self, _: &SimState) -> f64 {
                self.0 += 1;
                f64::INFINITY
            }
            fn event_driven(&self) -> bool {
                true
            }
        }
        struct CountingPolicy(u32, bool);
        impl TaskPolicy for CountingPolicy {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn pick(&mut self, _: &SimState, ready: &[TaskRef], _: f64) -> Option<TaskRef> {
                self.0 += 1;
                ready.first().copied()
            }
            fn event_driven(&self) -> bool {
                self.1
            }
        }
        let run = |event_driven: bool| {
            let mut g = CountingGov(0);
            let mut p = CountingPolicy(0, event_driven);
            let mut s = WorstCase;
            let mut sim =
                Simulation::new(single_task_set(4, 10.0), cfg(), &mut g, &mut p, &mut s).unwrap();
            // The cut at t=2 forces a second decision at an unchanged state.
            sim.run_until(2.0).unwrap();
            sim.run_until(10.0).unwrap();
            let out = sim.finish();
            (g.0, p.0, out.metrics)
        };
        let (gov_skip, pol_skip, m_skip) = run(true);
        let (gov_full, pol_full, m_full) = run(false);
        // The opted-out pair is consulted at t=0 and again at t=2.
        assert_eq!((gov_full, pol_full), (2, 2));
        // The event-driven pair replays the cached decision at t=2.
        assert_eq!((gov_skip, pol_skip), (1, 1));
        // Both runs schedule identically (decisions count both, ran or
        // replayed).
        assert_eq!(m_skip.decisions, m_full.decisions);
        assert_eq!(m_skip.nodes_completed, m_full.nodes_completed);
        assert!((m_skip.busy_time - m_full.busy_time).abs() < 1e-12);
        assert!((m_skip.charge - m_full.charge).abs() < 1e-12);
    }

    #[test]
    fn completion_invalidates_the_consult_cache() {
        // Two instances back to back: the release of instance 2 (and the
        // completion of instance 1) must re-consult even an event-driven
        // pair — only *redundant* consults may be skipped.
        struct CountingGov(u32);
        impl FrequencyGovernor for CountingGov {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn frequency(&mut self, _: &SimState) -> f64 {
                self.0 += 1;
                f64::INFINITY
            }
            fn event_driven(&self) -> bool {
                true
            }
        }
        let mut g = CountingGov(0);
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut sim =
            Simulation::new(single_task_set(2, 5.0), cfg(), &mut g, &mut p, &mut s).unwrap();
        sim.run_until(10.0).unwrap();
        let out = sim.finish();
        assert_eq!(out.metrics.instances_completed, 2);
        // One consult per instance — no skips happened (every decision here
        // follows a release), and no consult was lost either.
        assert_eq!(g.0, 2);
    }

    #[test]
    fn battery_view_is_visible_to_the_scheduler() {
        // A governor that records the SoC it sees at every decision.
        struct SocProbe {
            seen: Vec<f64>,
        }
        impl FrequencyGovernor for SocProbe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn frequency(&mut self, state: &SimState) -> f64 {
                let view = state.battery().expect("battery mounted and visible");
                self.seen.push(view.state_of_charge);
                f64::INFINITY
            }
        }
        let mut g = SocProbe { seen: Vec::new() };
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut sim =
            Simulation::new(single_task_set(2, 5.0), cfg(), &mut g, &mut p, &mut s).unwrap();
        let mut battery = IdealModel::new(100.0);
        sim.mount_battery(&mut battery);
        sim.run_until(20.0).unwrap();
        drop(sim);
        assert!(g.seen.len() >= 4, "{:?}", g.seen);
        assert!((g.seen[0] - 1.0).abs() < 1e-12, "full at the first decision");
        assert!(
            g.seen.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "SoC is non-increasing under discharge: {:?}",
            g.seen
        );
        assert!(*g.seen.last().unwrap() < 1.0, "draw must be visible");
    }

    // ------------------------------------------------------------- multi-PE

    use bas_cpu::Platform;
    use bas_taskgraph::Mapping;

    /// Two independent graphs mapped one per PE, worst-case actuals.
    fn duo_sim_parts() -> (TaskSet, Mapping, SimConfig) {
        let mut set = TaskSet::new();
        for name in ["A", "B"] {
            let mut b = TaskGraphBuilder::new(name);
            b.add_node("n", 4);
            set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
        }
        let mapping = Mapping::list_schedule(&set, 2);
        let cfg = SimConfig::with_platform(Platform::uniform(unit_processor(), 2));
        (set, mapping, cfg)
    }

    #[test]
    fn two_pes_execute_their_mapped_work_in_parallel() {
        let (set, mapping, cfg) = duo_sim_parts();
        let (mut g0, mut g1) = (MaxSpeed, MaxSpeed);
        let (mut p0, mut p1) = (EdfTopo, EdfTopo);
        let mut s = WorstCase;
        let mut sim = Simulation::with_platform(
            set,
            mapping,
            cfg,
            vec![&mut g0, &mut g1],
            vec![&mut p0, &mut p1],
            &mut s,
        )
        .unwrap();
        sim.run_until(10.0).unwrap();
        let out = sim.finish();
        let m = &out.metrics;
        // 4 cycles at fmax on each element, concurrently.
        assert!((m.busy_time - 8.0).abs() < 1e-9, "{m:?}");
        assert!((m.sim_time - 10.0).abs() < 1e-9, "wall clock counted once: {m:?}");
        assert!((m.idle_time - 12.0).abs() < 1e-9, "2 PEs \u{00d7} 6 s idle: {m:?}");
        assert_eq!(m.instances_completed, 2);
        assert_eq!(m.deadline_misses, 0);
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
        assert_eq!(trace.lane_count(), 2);
        // Both elements run [0, 4): the trace lanes overlap in time.
        for pe in 0..2 {
            let first = trace.lane(pe).first().unwrap();
            assert!(matches!(first.kind, SliceKind::Run { .. }), "PE {pe}: {first:?}");
            assert!((first.end - 4.0).abs() < 1e-9, "PE {pe}: {first:?}");
        }
    }

    #[test]
    fn cross_pe_precedence_stalls_the_successor_element() {
        // Chain a(4) -> b(2) split across PEs: PE 1 must idle until PE 0
        // completes `a`, then run `b` — the completion on another element
        // is a scheduling point here.
        let mut b = TaskGraphBuilder::new("T0");
        let a = b.add_node("a", 4);
        let c = b.add_node("b", 2);
        b.add_edge(a, c).unwrap();
        let mut set = TaskSet::new();
        let gid = set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
        let mut mapping = Mapping::single_pe(&set);
        mapping.assign(gid, c, 1);
        let cfg = SimConfig::with_platform(Platform::uniform(unit_processor(), 2));
        let (mut g0, mut g1) = (MaxSpeed, MaxSpeed);
        let (mut p0, mut p1) = (EdfTopo, EdfTopo);
        let mut s = WorstCase;
        let mut sim = Simulation::with_platform(
            set,
            mapping,
            cfg,
            vec![&mut g0, &mut g1],
            vec![&mut p0, &mut p1],
            &mut s,
        )
        .unwrap();
        sim.run_until(10.0).unwrap();
        let out = sim.finish();
        assert_eq!(out.metrics.deadline_misses, 0);
        assert_eq!(out.metrics.instances_completed, 1);
        let trace = out.trace.unwrap();
        let lane1 = trace.lane(1);
        // PE 1: idle [0, 4), run b [4, 6).
        assert!(matches!(lane1[0].kind, SliceKind::Idle), "{lane1:?}");
        let run = lane1.iter().find(|s| matches!(s.kind, SliceKind::Run { .. })).unwrap();
        assert!((run.start - 4.0).abs() < 1e-9 && (run.end - 6.0).abs() < 1e-9, "{run:?}");
    }

    /// Chain a(4) -> b(2) with a 500 kB edge payload, split across PEs.
    fn transfer_chain_parts(bytes: u64, split: bool) -> (TaskSet, Mapping) {
        let mut b = TaskGraphBuilder::new("T0");
        let a = b.add_node("a", 4);
        let c = b.add_node("b", 2);
        b.add_edge_weighted(a, c, bytes).unwrap();
        let mut set = TaskSet::new();
        let gid = set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
        let mut mapping = Mapping::single_pe(&set);
        if split {
            mapping.assign(gid, c, 1);
        }
        (set, mapping)
    }

    fn run_transfer_chain(set: TaskSet, mapping: Mapping, cfg: SimConfig) -> SimOutcome {
        let (mut g0, mut g1) = (MaxSpeed, MaxSpeed);
        let (mut p0, mut p1) = (EdfTopo, EdfTopo);
        let mut s = WorstCase;
        let mut sim = Simulation::with_platform(
            set,
            mapping,
            cfg,
            vec![&mut g0, &mut g1],
            vec![&mut p0, &mut p1],
            &mut s,
        )
        .unwrap();
        sim.run_until(10.0).unwrap();
        sim.finish()
    }

    #[test]
    fn interconnect_delays_cross_pe_successors_by_the_transfer_time() {
        // latency 0.5 s + 500 kB / 1 MB/s = 1.0 s in flight: b may only
        // start at t = 5, so PE 1 runs it over [5, 7) instead of [4, 6).
        let (set, mapping) = transfer_chain_parts(500_000, true);
        let ic = Interconnect::new(0.5, 1e6).unwrap();
        let cfg =
            SimConfig::with_platform(Platform::uniform(unit_processor(), 2).with_interconnect(ic));
        let out = run_transfer_chain(set, mapping, cfg);
        assert_eq!(out.metrics.deadline_misses, 0);
        assert_eq!(out.metrics.instances_completed, 1);
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
        let lane1 = trace.lane(1);
        let run = lane1.iter().find(|s| matches!(s.kind, SliceKind::Run { .. })).unwrap();
        assert!((run.start - 5.0).abs() < 1e-9 && (run.end - 7.0).abs() < 1e-9, "{run:?}");
    }

    #[test]
    fn interconnect_charges_nothing_within_one_pe() {
        // Same payload, both endpoints on PE 0: the data never crosses the
        // fabric, so the run is identical to the interconnect-free one.
        let ic = Interconnect::new(0.5, 1e6).unwrap();
        let (set, mapping) = transfer_chain_parts(500_000, false);
        let cfg =
            SimConfig::with_platform(Platform::uniform(unit_processor(), 2).with_interconnect(ic));
        let with_ic = run_transfer_chain(set, mapping, cfg);
        let (set, mapping) = transfer_chain_parts(500_000, false);
        let cfg = SimConfig::with_platform(Platform::uniform(unit_processor(), 2));
        let without = run_transfer_chain(set, mapping, cfg);
        assert_eq!(with_ic.metrics.busy_time, without.metrics.busy_time);
        assert_eq!(with_ic.metrics.idle_time, without.metrics.idle_time);
        assert_eq!(with_ic.metrics.instances_completed, without.metrics.instances_completed);
        let run = with_ic.trace.unwrap();
        let base = without.trace.unwrap();
        assert_eq!(run.lane(0).len(), base.lane(0).len());
    }

    #[test]
    fn zero_cost_interconnect_matches_the_bare_platform() {
        // A free fabric (0 latency, infinite bandwidth) must reproduce the
        // historical cross-PE blocking behaviour exactly.
        let ic = Interconnect::new(0.0, f64::INFINITY).unwrap();
        let (set, mapping) = transfer_chain_parts(500_000, true);
        let cfg =
            SimConfig::with_platform(Platform::uniform(unit_processor(), 2).with_interconnect(ic));
        let with_ic = run_transfer_chain(set, mapping, cfg);
        let trace = with_ic.trace.unwrap();
        let lane1 = trace.lane(1);
        let run = lane1.iter().find(|s| matches!(s.kind, SliceKind::Run { .. })).unwrap();
        assert!((run.start - 4.0).abs() < 1e-9 && (run.end - 6.0).abs() < 1e-9, "{run:?}");
    }

    #[test]
    fn battery_absorbs_the_summed_current_of_all_pes() {
        let (set, mapping, cfg) = duo_sim_parts();
        let (mut g0, mut g1) = (MaxSpeed, MaxSpeed);
        let (mut p0, mut p1) = (EdfTopo, EdfTopo);
        let mut s = WorstCase;
        let mut battery = IdealModel::new(1e6);
        let mut sim = Simulation::with_platform(
            set,
            mapping,
            cfg,
            vec![&mut g0, &mut g1],
            vec![&mut p0, &mut p1],
            &mut s,
        )
        .unwrap();
        sim.mount_battery(&mut battery);
        sim.run_until(10.0).unwrap();
        let out = sim.finish();
        // Both PEs at full draw for 4 s, then both idle for 6 s.
        let proc = unit_processor();
        let run_current = proc.battery_current_at(2);
        let idle = proc.supply().idle_current;
        let expected = 2.0 * (run_current * 4.0 + idle * 6.0);
        assert!(
            (out.metrics.charge - expected).abs() < 1e-9,
            "charge {} vs expected {expected}",
            out.metrics.charge
        );
        assert!((out.battery.unwrap().charge_delivered - expected).abs() < 1e-9);
    }

    #[test]
    fn bank_and_mapping_mismatches_are_rejected() {
        let (set, mapping, cfg) = duo_sim_parts();
        let mut g0 = MaxSpeed;
        let (mut p0, mut p1) = (EdfTopo, EdfTopo);
        let mut s = WorstCase;
        // One governor for two PEs.
        let err = Simulation::with_platform(
            set.clone(),
            mapping,
            cfg.clone(),
            vec![&mut g0],
            vec![&mut p0, &mut p1],
            &mut s,
        )
        .err()
        .unwrap();
        assert!(matches!(err, SimError::BankMismatch { governors: 1, policies: 2, pes: 2 }));
        // A mapping that names PE 2 on a 2-PE platform.
        let mut bad = Mapping::single_pe(&set);
        bad.assign(bas_taskgraph::GraphId::from_index(0), bas_taskgraph::NodeId::from_index(0), 2);
        let (mut g0, mut g1) = (MaxSpeed, MaxSpeed);
        let err = Simulation::with_platform(
            set,
            bad,
            cfg,
            vec![&mut g0, &mut g1],
            vec![&mut p0, &mut p1],
            &mut s,
        )
        .err()
        .unwrap();
        assert!(matches!(err, SimError::InvalidMapping(_)), "{err:?}");
    }

    #[test]
    fn narrow_mapping_on_a_wider_platform_idles_the_extra_pes() {
        // All work pinned to PE 0 of a 2-PE platform — legal, PE 1 just
        // idles. (Regression: the per-PE state vectors were sized by the
        // mapping's width instead of the platform's, which panicked at the
        // first release.)
        let set = single_task_set(4, 10.0);
        let mapping = Mapping::single_pe(&set);
        let cfg = SimConfig::with_platform(Platform::uniform(unit_processor(), 2));
        let (mut g0, mut g1) = (MaxSpeed, MaxSpeed);
        let (mut p0, mut p1) = (EdfTopo, EdfTopo);
        let mut s = WorstCase;
        let mut sim = Simulation::with_platform(
            set,
            mapping,
            cfg,
            vec![&mut g0, &mut g1],
            vec![&mut p0, &mut p1],
            &mut s,
        )
        .unwrap();
        sim.run_until(10.0).unwrap();
        let out = sim.finish();
        assert_eq!(out.metrics.instances_completed, 1);
        assert!((out.metrics.busy_time - 4.0).abs() < 1e-9);
        // PE 1's lane is pure idle.
        let trace = out.trace.unwrap();
        assert!(trace.lane(1).iter().all(|s| matches!(s.kind, SliceKind::Idle)), "{trace:?}");
    }

    #[test]
    fn per_pe_overutilization_is_rejected() {
        // U = 1.6 total is fine on 2 PEs only if split; force it all onto
        // PE 0.
        let mut set = TaskSet::new();
        for name in ["A", "B"] {
            let mut b = TaskGraphBuilder::new(name);
            b.add_node("n", 8);
            set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
        }
        let mapping = Mapping::single_pe(&set); // pes() == 1 -> pad below
        let mut onto_pe0 = mapping.clone();
        // Make it a 2-PE mapping with everything still on PE 0.
        onto_pe0.assign(
            bas_taskgraph::GraphId::from_index(0),
            bas_taskgraph::NodeId::from_index(0),
            0,
        );
        let cfg = SimConfig::with_platform(Platform::uniform(unit_processor(), 2));
        let (mut g0, mut g1) = (MaxSpeed, MaxSpeed);
        let (mut p0, mut p1) = (EdfTopo, EdfTopo);
        let mut s = WorstCase;
        let err = Simulation::with_platform(
            set.clone(),
            onto_pe0,
            cfg.clone(),
            vec![&mut g0, &mut g1],
            vec![&mut p0, &mut p1],
            &mut s,
        )
        .err()
        .unwrap();
        assert!(matches!(err, SimError::OverutilizedPe { pe: 0, .. }), "{err:?}");
        // Balanced, the same set is schedulable.
        let balanced = Mapping::list_schedule(&set, 2);
        let (mut g0, mut g1) = (MaxSpeed, MaxSpeed);
        let mut sim = Simulation::with_platform(
            set,
            balanced,
            cfg,
            vec![&mut g0, &mut g1],
            vec![&mut p0, &mut p1],
            &mut s,
        )
        .unwrap();
        sim.run_until(20.0).unwrap();
        assert_eq!(sim.finish().metrics.deadline_misses, 0);
    }
}
