//! Small shared types of the simulator.

use bas_taskgraph::{GraphId, NodeId};
use std::fmt;

/// A task within a task set: one node of one periodic graph. Instances are
/// implicit — with deadline = period at most one instance of a graph is
/// active at a time, so `(graph, node)` identifies the runnable work.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskRef {
    /// The owning periodic task graph.
    pub graph: GraphId,
    /// The node within that graph.
    pub node: NodeId,
}

impl TaskRef {
    /// Convenience constructor.
    pub fn new(graph: GraphId, node: NodeId) -> Self {
        TaskRef { graph, node }
    }
}

impl fmt::Debug for TaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.graph, self.node)
    }
}

impl fmt::Display for TaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.graph, self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::{GraphId, NodeId};

    #[test]
    fn task_ref_formats_as_graph_dot_node() {
        let t = TaskRef::new(GraphId::from_index(1), NodeId::from_index(2));
        assert_eq!(t.to_string(), "T1.n2");
        assert_eq!(format!("{t:?}"), "T1.n2");
    }

    #[test]
    fn task_refs_order_by_graph_then_node() {
        let a = TaskRef::new(GraphId::from_index(0), NodeId::from_index(5));
        let b = TaskRef::new(GraphId::from_index(1), NodeId::from_index(0));
        assert!(a < b);
    }
}
