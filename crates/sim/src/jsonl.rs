//! Streaming JSONL export of the simulation event stream — the
//! **`bas-events/v2`** schema.
//!
//! [`JsonlWriter`] is a [`SimObserver`] that serializes every event and
//! every (non-negligible) slice as one JSON object per line, written through
//! as they happen: memory use is O(1) in the run length, which is what makes
//! long-horizon runs exportable at all (the in-memory [`crate::trace::Trace`] grows
//! linearly).
//!
//! ## Schema: `bas-events/v2`
//!
//! A stream is a sequence of newline-delimited JSON objects. Every object
//! has a `"type"` discriminator; runs are introduced by a header object:
//!
//! | `type` | fields |
//! |---|---|
//! | `header` | `schema` (`"bas-events/v2"`), `scenario`, `spec`, `seed` |
//! | `release` | `t`, `graph`, `instance`, `deadline` |
//! | `freq` | `t`, `pe`, `fref` |
//! | `decision` | `t`, `pe`, `fref`, `picked` (task name or `null`) |
//! | `start` | `t`, `pe`, `task`, `frequency` |
//! | `preempt` | `t`, `pe`, `task`, `by` |
//! | `progress` | `t`, `pe`, `task`, `cycles`, `busy` |
//! | `complete` | `t`, `pe`, `task`, `actual`, `instance_done` |
//! | `deadline_miss` | `t`, `graph`, `deadline` |
//! | `idle` | `t`, `pe`, `duration` |
//! | `battery` | `t`, `soc`, `delivered`, `exhausted` |
//! | `slice` | `pe`, `start`, `duration`, `end`, `current`, `kind` (`"run"`\|`"idle"`), and for runs `task`, `opp`, `frequency` |
//!
//! **v2 vs v1**: every per-PE record — `freq`, `decision`, `start`,
//! `preempt`, `progress`, `complete`, `idle` and `slice` — now carries the
//! processing element it happened on as a `pe` index (`0` on a
//! uniprocessor, where the stream is otherwise identical to v1).
//! Platform-wide records (`release`, `deadline_miss`, `battery`, `header`)
//! are unchanged: releases and deadlines belong to a *graph* whose nodes
//! may span PEs, and the battery is shared.
//!
//! Tasks serialize as their display names (`"T1.n2"`), graphs as indices.
//! Numbers are plain JSON numbers (full `f64` round-trip precision, never
//! `NaN`/`Infinity`). Slice records mirror the in-memory trace lanes
//! exactly: the per-`pe` slice sequences of a stream equal the lanes of a
//! `record_trace = true` run of the same simulation, with identical
//! `start`/`end` values (sub-resolution slices are dropped by both; note
//! that on multi-PE platforms a stream slice is cut wherever *any* PE
//! changes legs, while the in-memory lane re-merges those cuts).
//!
//! Unknown `type`s must be skipped by consumers; fields will only ever be
//! added within `v2`, never removed or re-typed.

use crate::event::{SimEvent, SliceInfo};
use crate::observer::SimObserver;
use crate::state::SimState;
use crate::time;
use crate::trace::SliceKind;
use std::fmt::Write as _;
use std::io;

/// Identifier of the event-stream schema emitted by this version.
pub const EVENTS_SCHEMA: &str = "bas-events/v2";

/// A streaming `bas-events/v2` writer over any [`io::Write`] sink.
///
/// I/O errors cannot surface through the observer hooks, so the writer goes
/// quiet after the first failure and reports it from [`JsonlWriter::error`] /
/// [`JsonlWriter::into_inner`] — check one of them when the run ends.
#[derive(Debug)]
pub struct JsonlWriter<W: io::Write> {
    sink: W,
    error: Option<io::Error>,
    /// Scratch for assembling `line + "\n"` so each line reaches the sink
    /// as a single write (reused across lines; no per-line allocation in
    /// steady state).
    buf: String,
}

impl<W: io::Write> JsonlWriter<W> {
    /// Wrap a sink. Nothing is written until events arrive (or
    /// [`JsonlWriter::header`] is called).
    pub fn new(sink: W) -> Self {
        JsonlWriter { sink, error: None, buf: String::new() }
    }

    /// Write a run-header line announcing the schema and which run follows.
    /// Multi-run streams (e.g. one per scheduler spec) call this once per
    /// run.
    pub fn header(&mut self, scenario: &str, spec: &str, seed: u64) {
        let line = format!(
            "{{\"type\":\"header\",\"schema\":\"{EVENTS_SCHEMA}\",\"scenario\":{},\"spec\":{},\"seed\":{seed}}}",
            json_str(scenario),
            json_str(spec),
        );
        self.line(&line);
    }

    /// The first I/O error encountered, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flush the sink, latching any failure like a write would. Streamed
    /// replays (e.g. an HTTP subscriber) call this between runs so each
    /// spec's header reaches the consumer promptly instead of sitting in a
    /// buffering sink until the whole replay ends.
    pub fn flush(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.sink.flush() {
            self.error = Some(e);
        }
    }

    /// Unwrap the sink, surfacing the first I/O error (if any) as `Err`.
    pub fn into_inner(self) -> Result<W, io::Error> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.sink),
        }
    }

    fn line(&mut self, s: &str) {
        if self.error.is_some() {
            return;
        }
        // One `write_all` per line, newline included: sinks that frame or
        // broadcast each write (the HTTP chunk writer, the serve event hub)
        // then always see whole NDJSON lines, never a line split from its
        // terminator.
        self.buf.clear();
        self.buf.push_str(s);
        self.buf.push('\n');
        if let Err(e) = self.sink.write_all(self.buf.as_bytes()) {
            self.error = Some(e);
        }
    }
}

impl<W: io::Write> SimObserver for JsonlWriter<W> {
    fn on_event(&mut self, _state: &SimState, event: &SimEvent) {
        let line = event_json(event);
        self.line(&line);
    }

    fn on_slice(&mut self, _state: &SimState, slice: &SliceInfo) {
        if time::negligible(slice.duration) {
            return; // mirror the in-memory trace: sub-resolution slices drop
        }
        let line = slice_json(slice);
        self.line(&line);
    }
}

/// Render one event as its `bas-events/v2` JSON object (no trailing newline).
pub fn event_json(event: &SimEvent) -> String {
    match *event {
        SimEvent::Release { t, graph, instance, deadline } => format!(
            "{{\"type\":\"release\",\"t\":{},\"graph\":{},\"instance\":{instance},\"deadline\":{}}}",
            num(t),
            graph.index(),
            num(deadline)
        ),
        SimEvent::FreqChange { t, pe, fref } => {
            format!("{{\"type\":\"freq\",\"t\":{},\"pe\":{pe},\"fref\":{}}}", num(t), num(fref))
        }
        SimEvent::Decision { t, pe, fref, picked } => {
            let picked = match picked {
                Some(task) => json_str(&task.to_string()),
                None => "null".to_string(),
            };
            format!(
                "{{\"type\":\"decision\",\"t\":{},\"pe\":{pe},\"fref\":{},\"picked\":{picked}}}",
                num(t),
                num(fref)
            )
        }
        SimEvent::Start { t, pe, task, frequency } => format!(
            "{{\"type\":\"start\",\"t\":{},\"pe\":{pe},\"task\":{},\"frequency\":{}}}",
            num(t),
            json_str(&task.to_string()),
            num(frequency)
        ),
        SimEvent::Preempt { t, pe, task, by } => format!(
            "{{\"type\":\"preempt\",\"t\":{},\"pe\":{pe},\"task\":{},\"by\":{}}}",
            num(t),
            json_str(&task.to_string()),
            json_str(&by.to_string())
        ),
        SimEvent::Progress { t, pe, task, cycles, busy } => format!(
            "{{\"type\":\"progress\",\"t\":{},\"pe\":{pe},\"task\":{},\"cycles\":{},\"busy\":{}}}",
            num(t),
            json_str(&task.to_string()),
            num(cycles),
            num(busy)
        ),
        SimEvent::Complete { t, pe, task, actual, instance_done } => format!(
            "{{\"type\":\"complete\",\"t\":{},\"pe\":{pe},\"task\":{},\"actual\":{},\"instance_done\":{instance_done}}}",
            num(t),
            json_str(&task.to_string()),
            num(actual)
        ),
        SimEvent::DeadlineMiss { t, graph, deadline } => format!(
            "{{\"type\":\"deadline_miss\",\"t\":{},\"graph\":{},\"deadline\":{}}}",
            num(t),
            graph.index(),
            num(deadline)
        ),
        SimEvent::Idle { t, pe, duration } => {
            format!("{{\"type\":\"idle\",\"t\":{},\"pe\":{pe},\"duration\":{}}}", num(t), num(duration))
        }
        SimEvent::BatteryStep { t, state_of_charge, charge_delivered, exhausted } => format!(
            "{{\"type\":\"battery\",\"t\":{},\"soc\":{},\"delivered\":{},\"exhausted\":{exhausted}}}",
            num(t),
            num(state_of_charge),
            num(charge_delivered)
        ),
    }
}

/// Render one slice as its `bas-events/v2` JSON object (no trailing
/// newline). `end` is serialized as `start + duration`, matching the
/// in-memory trace's end times exactly.
pub fn slice_json(slice: &SliceInfo) -> String {
    let mut out = String::with_capacity(96);
    write!(
        out,
        "{{\"type\":\"slice\",\"pe\":{},\"start\":{},\"duration\":{},\"end\":{},\"current\":{}",
        slice.pe,
        num(slice.start),
        num(slice.duration),
        num(slice.end()),
        num(slice.current)
    )
    .expect("writing to String cannot fail");
    match slice.kind {
        SliceKind::Run { task, opp, frequency } => write!(
            out,
            ",\"kind\":\"run\",\"task\":{},\"opp\":{opp},\"frequency\":{}}}",
            json_str(&task.to_string()),
            num(frequency)
        )
        .expect("writing to String cannot fail"),
        SliceKind::Idle => out.push_str(",\"kind\":\"idle\"}"),
    }
    out
}

/// Format a finite `f64` as a JSON number (shortest round-trip decimal).
fn num(x: f64) -> String {
    debug_assert!(x.is_finite(), "simulation quantities are finite");
    format!("{x}")
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail")
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TaskRef;
    use bas_taskgraph::{GraphId, NodeId, TaskSet};

    fn task() -> TaskRef {
        TaskRef::new(GraphId::from_index(1), NodeId::from_index(2))
    }

    #[test]
    fn header_carries_schema_and_escaped_strings() {
        let mut w = JsonlWriter::new(Vec::new());
        w.header("smo\"ke", "EDF", 7);
        let out = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert_eq!(
            out,
            "{\"type\":\"header\",\"schema\":\"bas-events/v2\",\"scenario\":\"smo\\\"ke\",\"spec\":\"EDF\",\"seed\":7}\n"
        );
    }

    #[test]
    fn events_render_one_object_per_line() {
        let state = SimState::new(TaskSet::new());
        let mut w = JsonlWriter::new(Vec::new());
        w.on_event(
            &state,
            &SimEvent::Release {
                t: 0.0,
                graph: GraphId::from_index(0),
                instance: 3,
                deadline: 10.0,
            },
        );
        w.on_event(&state, &SimEvent::Decision { t: 0.0, pe: 0, fref: 0.5, picked: None });
        w.on_event(&state, &SimEvent::Decision { t: 0.0, pe: 0, fref: 0.5, picked: Some(task()) });
        let out = String::from_utf8(w.into_inner().unwrap()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"type\":\"release\",\"t\":0,\"graph\":0,\"instance\":3,\"deadline\":10}"
        );
        assert!(lines[1].ends_with("\"picked\":null}"), "{}", lines[1]);
        assert!(lines[2].ends_with("\"picked\":\"T1.n2\"}"), "{}", lines[2]);
    }

    #[test]
    fn slices_mirror_the_trace_and_drop_negligible() {
        let state = SimState::new(TaskSet::new());
        let mut w = JsonlWriter::new(Vec::new());
        w.on_slice(
            &state,
            &SliceInfo {
                pe: 0,
                start: 1.0,
                duration: 2.0,
                current: 0.5,
                kind: SliceKind::Run { task: task(), opp: 1, frequency: 0.75 },
            },
        );
        w.on_slice(
            &state,
            &SliceInfo { pe: 0, start: 3.0, duration: 1e-12, current: 0.5, kind: SliceKind::Idle },
        );
        let out = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert_eq!(
            out,
            "{\"type\":\"slice\",\"pe\":0,\"start\":1,\"duration\":2,\"end\":3,\"current\":0.5,\"kind\":\"run\",\"task\":\"T1.n2\",\"opp\":1,\"frequency\":0.75}\n"
        );
    }

    #[test]
    fn io_errors_latch_and_surface_from_into_inner() {
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = JsonlWriter::new(Broken);
        w.header("s", "EDF", 1);
        assert!(w.error().is_some());
        w.header("s", "EDF", 2); // quiet after the first failure
        assert!(w.into_inner().is_err());
    }

    #[test]
    fn flush_latches_sink_failures_too() {
        struct NoFlush(Vec<u8>);
        impl io::Write for NoFlush {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("pipe closed"))
            }
        }
        let mut w = JsonlWriter::new(NoFlush(Vec::new()));
        w.header("s", "EDF", 1);
        assert!(w.error().is_none());
        w.flush();
        assert!(w.error().is_some(), "flush failure must latch");
        w.header("s", "EDF", 2); // quiet afterwards, like writes
        assert!(w.into_inner().is_err());
    }
}
