//! Tolerant time comparison for the event-driven simulator.
//!
//! Simulation time is `f64` seconds. Event times are recomputed from exact
//! integer instance counts (`phase + k·period`) rather than accumulated, so
//! drift cannot build up; the tolerances here only have to absorb the
//! round-off of single arithmetic expressions (durations from cycle counts
//! divided by interpolated frequencies).

/// Absolute tolerance floor, seconds.
pub const ABS_EPS: f64 = 1e-9;

/// Relative tolerance applied to the larger magnitude.
pub const REL_EPS: f64 = 1e-12;

/// Tolerance for comparing times near magnitude `scale`.
#[inline]
pub fn eps_for(scale: f64) -> f64 {
    ABS_EPS.max(scale.abs() * REL_EPS)
}

/// `a ≈ b` under the combined tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= eps_for(a.abs().max(b.abs()))
}

/// `a ≤ b` allowing tolerance overshoot.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + eps_for(a.abs().max(b.abs()))
}

/// `a ≥ b` allowing tolerance undershoot.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - eps_for(a.abs().max(b.abs()))
}

/// True when a duration is too small to schedule (treated as zero).
#[inline]
pub fn negligible(duration: f64) -> bool {
    duration <= ABS_EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_round_off() {
        let a = 0.1 + 0.2;
        assert!(approx_eq(a, 0.3));
        assert!(!approx_eq(0.3, 0.31));
    }

    #[test]
    fn approx_le_ge_are_tolerant_at_scale() {
        let big = 1.0e6;
        assert!(approx_le(big + big * REL_EPS / 2.0, big));
        assert!(approx_ge(big - big * REL_EPS / 2.0, big));
        assert!(!approx_le(big + 1.0, big));
    }

    #[test]
    fn negligible_catches_tiny_slices() {
        assert!(negligible(0.0));
        assert!(negligible(1e-12));
        assert!(!negligible(1e-6));
    }
}
