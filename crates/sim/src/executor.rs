//! The event-driven execution engine.
//!
//! Scheduling points are instance releases and node completions — exactly the
//! points at which the paper's pseudocode re-evaluates `fref` and re-picks a
//! task. Between points the chosen node runs at the governor's `fref`,
//! realized as (at most) two discrete-operating-point segments, high leg
//! first so the current is non-increasing *within* the slice (guideline G1's
//! "locally non-increasing" shape at the finest granularity we control).
//!
//! A release arriving while a node runs preempts it (preemptive EDF model);
//! the node keeps its progress and re-enters the ready list.

use crate::error::SimError;
use crate::metrics::Metrics;
use crate::state::SimState;
use crate::time;
use crate::trace::{SliceKind, Trace, TraceSlice};
use crate::traits::{FrequencyGovernor, TaskPolicy};
use crate::types::TaskRef;
use crate::workload::ActualSampler;
use bas_battery::{BatteryModel, LifetimeReport, StepOutcome};
use bas_cpu::{FreqPolicy, Processor};
use bas_taskgraph::TaskSet;

/// What to do when an instance is still unfinished at its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlineMode {
    /// Abort the simulation with [`SimError::DeadlineMiss`] — the right mode
    /// for experiments, where every scheduler is supposed to be miss-free.
    #[default]
    Fail,
    /// Record the miss, drop the stale instance, release the new one. Useful
    /// for deliberately-overloaded what-if runs.
    DropAndCount,
}

/// Static configuration of a simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The DVS processor model.
    pub processor: Processor,
    /// How continuous `fref` maps onto discrete operating points.
    pub freq_policy: FreqPolicy,
    /// Deadline-miss behaviour.
    pub deadline_mode: DeadlineMode,
    /// Record the full execution trace (costs memory on long runs; metrics
    /// and battery accounting are always exact regardless).
    pub record_trace: bool,
    /// Reject task sets that are over-utilized or structurally infeasible
    /// before running.
    pub check_feasibility: bool,
}

impl SimConfig {
    /// Config with the given processor and all defaults (interpolated
    /// frequencies, fail on miss, trace recording on, feasibility checked).
    pub fn new(processor: Processor) -> Self {
        SimConfig {
            processor,
            freq_policy: FreqPolicy::Interpolate,
            deadline_mode: DeadlineMode::Fail,
            record_trace: true,
            check_feasibility: true,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Aggregate counters and integrals.
    pub metrics: Metrics,
    /// The execution trace when `record_trace` was set.
    pub trace: Option<Trace>,
    /// Battery lifetime report for co-simulated runs.
    pub battery: Option<LifetimeReport>,
}

/// The discrete-event executor binding a task set, a governor and a policy.
pub struct Executor<'a> {
    cfg: SimConfig,
    state: SimState,
    governor: &'a mut dyn FrequencyGovernor,
    policy: &'a mut dyn TaskPolicy,
    sampler: &'a mut dyn ActualSampler,
    trace: Trace,
    metrics: Metrics,
    ready: Vec<TaskRef>,
    running: Option<TaskRef>,
}

impl<'a> Executor<'a> {
    /// Bind a simulation. Fails fast on infeasible input when configured to.
    pub fn new(
        set: TaskSet,
        cfg: SimConfig,
        governor: &'a mut dyn FrequencyGovernor,
        policy: &'a mut dyn TaskPolicy,
        sampler: &'a mut dyn ActualSampler,
    ) -> Result<Self, SimError> {
        if set.is_empty() {
            return Err(SimError::EmptyTaskSet);
        }
        if cfg.check_feasibility {
            let fmax = cfg.processor.fmax();
            let u = set.utilization(fmax);
            if u > 1.0 + 1e-9 {
                return Err(SimError::Overutilized { utilization: u });
            }
            for (gid, g) in set.iter() {
                if !g.is_structurally_feasible(fmax) {
                    return Err(SimError::StructurallyInfeasible { graph: gid.index() });
                }
            }
        }
        Ok(Executor {
            cfg,
            state: SimState::new(set),
            governor,
            policy,
            sampler,
            trace: Trace::new(),
            metrics: Metrics::default(),
            ready: Vec::new(),
            running: None,
        })
    }

    /// The live scheduler-visible state (for inspection in tests).
    pub fn state(&self) -> &SimState {
        &self.state
    }

    /// Simulate until `horizon` seconds with no battery attached.
    pub fn run_for(&mut self, horizon: f64) -> Result<SimOutcome, SimError> {
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SimError::InvalidHorizon(horizon));
        }
        self.run(horizon, None)?;
        Ok(SimOutcome {
            metrics: self.metrics.clone(),
            trace: self.cfg.record_trace.then(|| self.trace.clone()),
            battery: None,
        })
    }

    /// Co-simulate with `battery` until it is exhausted (or `max_time` as a
    /// guard). The returned report carries lifetime and delivered charge —
    /// the two columns of the paper's Table 2.
    pub fn run_until_battery_dead(
        &mut self,
        battery: &mut dyn BatteryModel,
        max_time: f64,
    ) -> Result<SimOutcome, SimError> {
        if !(max_time.is_finite() && max_time > 0.0) {
            return Err(SimError::InvalidHorizon(max_time));
        }
        self.run(max_time, Some(battery))?;
        let report = LifetimeReport {
            lifetime: self.state.now(),
            charge_delivered: battery.charge_delivered(),
            died: battery.is_exhausted(),
        };
        Ok(SimOutcome {
            metrics: self.metrics.clone(),
            trace: self.cfg.record_trace.then(|| self.trace.clone()),
            battery: Some(report),
        })
    }

    // ------------------------------------------------------------------

    fn run(
        &mut self,
        horizon: f64,
        mut battery: Option<&mut dyn BatteryModel>,
    ) -> Result<(), SimError> {
        loop {
            let t = self.state.now();
            if time::approx_ge(t, horizon) {
                break; // horizon is exclusive: events at exactly `horizon` are not processed
            }
            self.process_releases(t)?;
            let t_next = self.state.next_release_any().min(horizon);
            self.state.ready_tasks(&mut self.ready);

            // Governor first (fref feeds the policy's feasibility checks).
            let fmin = self.cfg.processor.fmin();
            let fmax = self.cfg.processor.fmax();
            let fref = if self.ready.is_empty() {
                fmin // nothing to run; value is irrelevant
            } else {
                self.governor.frequency(&self.state).clamp(fmin, fmax)
            };

            self.metrics.decisions += 1;
            let pick = if self.ready.is_empty() {
                None
            } else {
                self.policy.pick(&self.state, &self.ready, fref)
            };

            match pick {
                None => {
                    let dt = t_next - t;
                    if time::negligible(dt) {
                        self.state.set_now(t_next);
                        continue;
                    }
                    if let Some(stop) = self.emit(
                        t,
                        dt,
                        self.cfg.processor.supply().idle_current,
                        SliceKind::Idle,
                        &mut battery,
                    ) {
                        self.metrics.idle_time += stop - t;
                        self.state.set_now(stop);
                        break;
                    }
                    self.metrics.idle_time += dt;
                    self.running = None;
                    self.state.set_now(t_next);
                }
                Some(task) => {
                    if self.ready.binary_search(&task).is_err() {
                        return Err(SimError::InvalidPick { task });
                    }
                    if let Some(prev) = self.running {
                        if prev != task && self.state.remaining_wc_node(prev) > 0.0 {
                            self.metrics.preemptions += 1;
                        }
                    }
                    let rem_actual = self.state.graph_ref(task.graph).nodes[task.node.index()]
                        .remaining_actual();
                    let realization = self.cfg.processor.realize(fref, self.cfg.freq_policy);
                    let dur_complete = rem_actual / realization.average_frequency;
                    if time::negligible(dur_complete) {
                        // Residual below time resolution: complete in place.
                        self.complete_if_done(task, rem_actual);
                        continue;
                    }
                    let slack_to_event = t_next - t;
                    let (dt, completing) = if dur_complete <= slack_to_event + time::eps_for(t_next)
                    {
                        (dur_complete, true)
                    } else {
                        (slack_to_event, false)
                    };
                    if time::negligible(dt) {
                        // Release boundary reached; go process it.
                        self.state.set_now(t_next);
                        continue;
                    }
                    // Execute: high-frequency leg first, then low (locally
                    // non-increasing current within the slice).
                    let mut died_at = None;
                    let mut elapsed = 0.0;
                    let mut cycles_done = 0.0;
                    let mut legs: [Option<(usize, f64)>; 2] = [None, None];
                    match realization.hi {
                        Some(hi) => {
                            legs[0] = Some((hi.opp, dt * hi.time_fraction));
                            legs[1] = Some((realization.lo.opp, dt * realization.lo.time_fraction));
                        }
                        None => legs[0] = Some((realization.lo.opp, dt)),
                    }
                    for leg in legs.into_iter().flatten() {
                        let (opp_ix, leg_dt) = leg;
                        if time::negligible(leg_dt) {
                            continue;
                        }
                        let opp = self.cfg.processor.opps().get(opp_ix);
                        let current = self.cfg.processor.battery_current_at(opp_ix);
                        let kind = SliceKind::Run { task, opp: opp_ix, frequency: opp.frequency };
                        if let Some(stop) =
                            self.emit(t + elapsed, leg_dt, current, kind, &mut battery)
                        {
                            let survived = stop - (t + elapsed);
                            cycles_done += opp.frequency * survived;
                            elapsed += survived;
                            died_at = Some(t + elapsed);
                            break;
                        }
                        cycles_done += opp.frequency * leg_dt;
                        elapsed += leg_dt;
                    }
                    self.metrics.busy_time += elapsed;
                    self.metrics.cycles_executed += cycles_done.min(rem_actual);
                    if let Some(stop) = died_at {
                        self.state.advance(task, cycles_done.min(rem_actual));
                        self.state.set_now(stop);
                        break;
                    }
                    self.running = Some(task);
                    if completing {
                        self.complete_if_done(task, rem_actual);
                    } else {
                        self.state.advance(task, cycles_done.min(rem_actual - 1e-3));
                    }
                    self.state.set_now(t + dt);
                }
            }
        }
        Ok(())
    }

    /// Process all releases due at or before the current time.
    fn process_releases(&mut self, t: f64) -> Result<(), SimError> {
        let ids: Vec<_> = self.state.set().graph_ids().collect();
        for gid in ids {
            while time::approx_le(self.state.next_release(gid), t) {
                if self.state.is_active(gid) {
                    // Deadline == release time of the next instance.
                    let deadline = self.state.deadline(gid).expect("active");
                    match self.cfg.deadline_mode {
                        DeadlineMode::Fail => {
                            return Err(SimError::DeadlineMiss { graph: gid.index(), deadline });
                        }
                        DeadlineMode::DropAndCount => {
                            self.metrics.deadline_misses += 1;
                            self.state.abandon(gid);
                        }
                    }
                }
                let instance = self.state.graph_ref(gid).next_instance;
                let graph = self.state.set()[gid].graph_arc();
                let actuals: Vec<f64> = graph
                    .node_ids()
                    .map(|n| self.sampler.sample(gid, n, instance, graph.wcet(n)))
                    .collect();
                self.state.release(gid, actuals);
                self.metrics.instances_released += 1;
                self.state.refresh_edf();
                self.governor.on_release(&self.state, gid);
            }
        }
        self.state.refresh_edf();
        Ok(())
    }

    /// Mark `task` complete after having run its full actual demand, and fire
    /// the completion hooks.
    fn complete_if_done(&mut self, task: TaskRef, rem_actual: f64) {
        let actual = self
            .state
            .advance(task, rem_actual)
            .expect("executing the full remaining actual must complete the node");
        self.metrics.nodes_completed += 1;
        if !self.state.is_active(task.graph) {
            self.metrics.instances_completed += 1;
        }
        self.state.refresh_edf();
        self.running = None;
        self.governor.on_completion(&self.state, task, actual);
        self.policy.on_completion(&self.state, task, actual);
    }

    /// Emit one constant-current slice: metrics, optional trace, optional
    /// battery. Returns `Some(stop_time)` when the battery died inside it.
    fn emit(
        &mut self,
        start: f64,
        dt: f64,
        current: f64,
        kind: SliceKind,
        battery: &mut Option<&mut dyn BatteryModel>,
    ) -> Option<f64> {
        let vbat = self.cfg.processor.supply().vbat;
        let mut effective_dt = dt;
        let mut died = None;
        if let Some(b) = battery.as_deref_mut() {
            match b.step(current, dt) {
                StepOutcome::Alive => {}
                StepOutcome::Exhausted { survived } => {
                    effective_dt = survived;
                    died = Some(start + survived);
                }
            }
        }
        self.metrics.sim_time += effective_dt;
        self.metrics.charge += current * effective_dt;
        self.metrics.energy += current * effective_dt * vbat;
        if self.cfg.record_trace && !time::negligible(effective_dt) {
            self.trace.push(TraceSlice { start, end: start + effective_dt, current, kind });
        }
        died
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EdfTopo;
    use crate::traits::MaxSpeed;
    use crate::workload::{FixedFraction, WorstCase};
    use bas_battery::IdealModel;
    use bas_cpu::presets::unit_processor;
    use bas_taskgraph::{PeriodicTaskGraph, TaskGraphBuilder, TaskSet};

    fn single_task_set(wc: u64, period: f64) -> TaskSet {
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("t", wc);
        let mut set = TaskSet::new();
        set.push(PeriodicTaskGraph::new(b.build().unwrap(), period).unwrap());
        set
    }

    fn chain_set() -> TaskSet {
        // T0: a(2) -> b(3), period 10; T1: c(2), period 5. U = 0.5 + 0.4 = 0.9.
        let mut b = TaskGraphBuilder::new("T0");
        let a = b.add_node("a", 2);
        let c = b.add_node("b", 3);
        b.add_edge(a, c).unwrap();
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("c", 2);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 5.0).unwrap();
        let mut set = TaskSet::new();
        set.push(g0);
        set.push(g1);
        set
    }

    fn cfg() -> SimConfig {
        SimConfig::new(unit_processor())
    }

    #[test]
    fn empty_set_is_rejected() {
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let err = Executor::new(TaskSet::new(), cfg(), &mut g, &mut p, &mut s).err().unwrap();
        assert_eq!(err, SimError::EmptyTaskSet);
    }

    #[test]
    fn overutilized_set_is_rejected() {
        let set = single_task_set(20, 10.0); // U = 2
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let err = Executor::new(set, cfg(), &mut g, &mut p, &mut s).err().unwrap();
        assert!(matches!(err, SimError::Overutilized { .. }));
    }

    #[test]
    fn single_task_at_fmax_completes_and_idles() {
        let set = single_task_set(4, 10.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut ex = Executor::new(set, cfg(), &mut g, &mut p, &mut s).unwrap();
        let out = ex.run_for(10.0).unwrap();
        let m = &out.metrics;
        assert_eq!(m.instances_released, 1);
        assert_eq!(m.instances_completed, 1);
        assert_eq!(m.nodes_completed, 1);
        assert!((m.busy_time - 4.0).abs() < 1e-9, "4 cycles at f=1");
        assert!((m.idle_time - 6.0).abs() < 1e-9);
        assert_eq!(m.deadline_misses, 0);
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
        assert!((trace.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn actual_fraction_shortens_execution() {
        let set = single_task_set(4, 10.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = FixedFraction::new(0.5);
        let mut ex = Executor::new(set, cfg(), &mut g, &mut p, &mut s).unwrap();
        let out = ex.run_for(10.0).unwrap();
        assert!((out.metrics.busy_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn precedence_is_respected_in_trace() {
        let set = chain_set();
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut ex = Executor::new(set, cfg(), &mut g, &mut p, &mut s).unwrap();
        let out = ex.run_for(10.0).unwrap();
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
        // T0.b must never run before T0.a completes: in execution order, a
        // precedes b.
        let order = trace.execution_order();
        let pos = |t: TaskRef| order.iter().position(|&x| x == t).expect("both ran");
        use bas_taskgraph::{GraphId, NodeId};
        let a = TaskRef::new(GraphId::from_index(0), NodeId::from_index(0));
        let b = TaskRef::new(GraphId::from_index(0), NodeId::from_index(1));
        assert!(pos(a) < pos(b));
        assert_eq!(out.metrics.deadline_misses, 0);
    }

    #[test]
    fn periodic_releases_recur() {
        let set = single_task_set(2, 5.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut ex = Executor::new(set, cfg(), &mut g, &mut p, &mut s).unwrap();
        let out = ex.run_for(20.0).unwrap();
        assert_eq!(out.metrics.instances_released, 4);
        assert_eq!(out.metrics.instances_completed, 4);
        assert!((out.metrics.busy_time - 8.0).abs() < 1e-9);
    }

    #[test]
    fn battery_death_cuts_the_run() {
        let set = single_task_set(5, 10.0);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut ex = Executor::new(set, cfg(), &mut g, &mut p, &mut s).unwrap();
        // unit_processor full-speed draw is 1.8 A; 9 C dies after 5 s busy.
        let mut battery = IdealModel::new(9.0);
        let out = ex.run_until_battery_dead(&mut battery, 1e6).unwrap();
        let report = out.battery.unwrap();
        assert!(report.died);
        assert!(report.lifetime > 0.0 && report.lifetime < 20.0);
        assert!((report.charge_delivered - 9.0).abs() < 1e-6);
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
    }

    #[test]
    fn deadline_miss_fails_or_counts_by_mode() {
        // Worst case 5 every 5 at fmax=1 is exactly feasible; make it
        // infeasible by idling: use a policy that refuses to run.
        struct Lazy;
        impl TaskPolicy for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn pick(&mut self, _: &SimState, _: &[TaskRef], _: f64) -> Option<TaskRef> {
                None
            }
        }
        let mut g = MaxSpeed;
        let mut s = WorstCase;
        // Fail mode:
        let mut p = Lazy;
        let mut ex = Executor::new(single_task_set(5, 5.0), cfg(), &mut g, &mut p, &mut s).unwrap();
        let err = ex.run_for(20.0).unwrap_err();
        assert!(matches!(err, SimError::DeadlineMiss { .. }));
        // Lenient mode:
        let mut cfg2 = cfg();
        cfg2.deadline_mode = DeadlineMode::DropAndCount;
        let mut p = Lazy;
        let mut g = MaxSpeed;
        let mut s = WorstCase;
        let mut ex = Executor::new(single_task_set(5, 5.0), cfg2, &mut g, &mut p, &mut s).unwrap();
        let out = ex.run_for(20.0).unwrap();
        assert!(out.metrics.deadline_misses >= 3);
        assert_eq!(out.metrics.nodes_completed, 0);
    }

    #[test]
    fn invalid_pick_is_rejected() {
        struct Rogue;
        impl TaskPolicy for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn pick(&mut self, _: &SimState, _: &[TaskRef], _: f64) -> Option<TaskRef> {
                use bas_taskgraph::{GraphId, NodeId};
                Some(TaskRef::new(GraphId::from_index(0), NodeId::from_index(7)))
            }
        }
        let mut g = MaxSpeed;
        let mut p = Rogue;
        let mut s = WorstCase;
        let mut ex =
            Executor::new(single_task_set(2, 10.0), cfg(), &mut g, &mut p, &mut s).unwrap();
        let err = ex.run_for(10.0).unwrap_err();
        assert!(matches!(err, SimError::InvalidPick { .. }));
    }

    #[test]
    fn invalid_horizon_is_rejected() {
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut ex =
            Executor::new(single_task_set(2, 10.0), cfg(), &mut g, &mut p, &mut s).unwrap();
        assert!(ex.run_for(0.0).is_err());
        assert!(ex.run_for(f64::NAN).is_err());
    }

    #[test]
    fn charge_accounting_matches_trace_integral() {
        let set = chain_set();
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut ex = Executor::new(set, cfg(), &mut g, &mut p, &mut s).unwrap();
        let out = ex.run_for(10.0).unwrap();
        let profile = out.trace.as_ref().unwrap().to_load_profile();
        assert!(
            (profile.total_charge() - out.metrics.charge).abs() < 1e-9,
            "trace integral {} vs metrics {}",
            profile.total_charge(),
            out.metrics.charge
        );
    }

    #[test]
    fn preemption_on_release_is_counted() {
        // T0 runs 8 cycles over period 20; T1 (period 5, wc 1) preempts it.
        let mut b = TaskGraphBuilder::new("T0");
        b.add_node("long", 8);
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("short", 1);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 5.0).unwrap();
        let mut set = TaskSet::new();
        set.push(g0);
        set.push(g1);
        let mut g = MaxSpeed;
        let mut p = EdfTopo;
        let mut s = WorstCase;
        let mut ex = Executor::new(set, cfg(), &mut g, &mut p, &mut s).unwrap();
        let out = ex.run_for(20.0).unwrap();
        assert!(out.metrics.preemptions >= 1, "{:?}", out.metrics);
        assert_eq!(out.metrics.deadline_misses, 0);
    }
}
