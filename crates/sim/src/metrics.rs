//! Aggregate metrics of a simulation run.

/// Counters and integrals accumulated by the executor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Simulated time covered, seconds.
    pub sim_time: f64,
    /// Time spent executing tasks, seconds.
    pub busy_time: f64,
    /// Time spent idle, seconds.
    pub idle_time: f64,
    /// Battery charge consumed, coulombs.
    pub charge: f64,
    /// Processor cycles executed (actual work retired).
    pub cycles_executed: f64,
    /// Battery-side energy consumed, joules.
    pub energy: f64,
    /// Completed node executions.
    pub nodes_completed: u64,
    /// Completed graph instances.
    pub instances_completed: u64,
    /// Released graph instances.
    pub instances_released: u64,
    /// Deadline misses observed (only in lenient mode; fail mode errors out).
    pub deadline_misses: u64,
    /// Scheduling decisions taken (policy invocations).
    pub decisions: u64,
    /// Preemptions (a running node was interrupted by a release).
    pub preemptions: u64,
    /// Makespan, seconds: the worst release-to-last-completion span over all
    /// completed graph instances (0 when none completed). Under DVS this is
    /// the per-hyperperiod "how late does the schedule stretch" measure —
    /// deadline-feasible schedules keep it at or below the relative
    /// deadline, and slower (more battery-friendly) frequency choices push
    /// it toward that bound.
    pub makespan: f64,
}

impl Metrics {
    /// Average battery current over the run, amperes.
    pub fn average_current(&self) -> f64 {
        if self.sim_time > 0.0 {
            self.charge / self.sim_time
        } else {
            0.0
        }
    }

    /// Fraction of time the processor was busy.
    pub fn busy_fraction(&self) -> f64 {
        if self.sim_time > 0.0 {
            self.busy_time / self.sim_time
        } else {
            0.0
        }
    }

    /// Energy per completed node, joules (∞ when nothing completed).
    pub fn energy_per_node(&self) -> f64 {
        if self.nodes_completed > 0 {
            self.energy / self.nodes_completed as f64
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let m = Metrics {
            sim_time: 10.0,
            busy_time: 7.0,
            idle_time: 3.0,
            charge: 5.0,
            energy: 6.0,
            nodes_completed: 3,
            ..Metrics::default()
        };
        assert!((m.average_current() - 0.5).abs() < 1e-12);
        assert!((m.busy_fraction() - 0.7).abs() < 1e-12);
        assert!((m.energy_per_node() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let m = Metrics::default();
        assert_eq!(m.average_current(), 0.0);
        assert_eq!(m.busy_fraction(), 0.0);
        assert_eq!(m.energy_per_node(), f64::INFINITY);
    }
}
