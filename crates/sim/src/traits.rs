//! The two pluggable scheduler components.
//!
//! The paper's methodology is exactly this factoring (§4): "One deals with
//! the global frequency selection (which also determines the current profile)
//! and the other deals with choosing the local order of tasks". Both traits
//! receive the scheduler-visible [`SimState`]; neither can observe sampled
//! actuals before completion.

use crate::state::SimState;
use crate::types::TaskRef;
use bas_taskgraph::GraphId;

/// Global frequency selection — the DVS algorithm.
///
/// `frequency` is consulted at every scheduling point; the executor clamps
/// the result into the processor's `[fmin, fmax]` and realizes it on the
/// discrete operating points. The event hooks mirror the paper's
/// `upon release` / `upon endofnode` pseudocode (§4.1) for governors that
/// keep internal state; stateless governors can compute everything from the
/// state view.
pub trait FrequencyGovernor: Send {
    /// Governor name for reports (e.g. `"ccEDF"`).
    fn name(&self) -> &'static str;

    /// The reference frequency, in Hz (cycles per second).
    fn frequency(&mut self, state: &SimState) -> f64;

    /// Called after an instance of `graph` is released.
    fn on_release(&mut self, state: &SimState, graph: GraphId) {
        let _ = (state, graph);
    }

    /// Called after a node completes having used `actual` cycles.
    fn on_completion(&mut self, state: &SimState, task: TaskRef, actual: f64) {
        let _ = (state, task, actual);
    }

    /// Declare that [`FrequencyGovernor::frequency`] is a pure function of
    /// **event-driven** state only: values that change exclusively at
    /// releases, abandons and completions (the active set, deadlines,
    /// `WCi`, the ready queues). The engine then skips re-consulting the
    /// governor on a PE whose inputs did not change since its last
    /// decision and replays the cached `fref` (the emitted event stream is
    /// unchanged).
    ///
    /// **Must stay `false`** (the default) for any governor that reads
    /// `state.now()`, the battery view, per-node progress of *running*
    /// nodes, an RNG, or mutable internal state from `frequency` — skipping
    /// a consult would then change behaviour, not just cost.
    fn event_driven(&self) -> bool {
        false
    }
}

/// Local order selection — which ready node runs next.
///
/// `ready` is the full precedence-satisfied ready list across *all* released
/// graphs, sorted by `(graph, node)`. Policies that model the paper's
/// "most imminent graph only" ready list filter it down themselves (via
/// [`SimState::most_imminent`]); BAS-2-style policies consider everything but
/// must apply the feasibility check before going out of EDF order.
///
/// Returning `None` idles the processor until the next event. Returning a
/// task not present in `ready` is an error the executor rejects.
pub trait TaskPolicy: Send {
    /// Policy name for reports (e.g. `"pUBS/all-released"`).
    fn name(&self) -> &'static str;

    /// Pick the next task to run at reference frequency `fref_hz`.
    fn pick(&mut self, state: &SimState, ready: &[TaskRef], fref_hz: f64) -> Option<TaskRef>;

    /// Called after a node completes having used `actual` cycles — the hook
    /// history-based Xk estimators (pUBS) learn from.
    fn on_completion(&mut self, state: &SimState, task: TaskRef, actual: f64) {
        let _ = (state, task, actual);
    }

    /// Declare that [`TaskPolicy::pick`] is a pure function of the ready
    /// list and event-driven state (see
    /// [`FrequencyGovernor::event_driven`]). With both halves of a PE's
    /// pair event-driven, the engine re-consults them only when the pair's
    /// inputs changed (a release/abandon/completion happened anywhere, or
    /// this PE's ready queue mutated) and otherwise replays the cached
    /// pick. `false` (the default) is always safe; it must stay `false`
    /// for time-, battery-, progress- or RNG-dependent policies (Random,
    /// LTF/STF, pUBS, the feasibility-checked BAS lists).
    fn event_driven(&self) -> bool {
        false
    }
}

/// A trivial governor that always runs flat out — the "EDF, no DVS" baseline
/// row of Table 2 uses this.
///
/// This is the **canonical** no-DVS implementation for the whole workspace:
/// `bas_dvs::NoDvs` is a re-export of this type, and
/// `bas_core::runner::GovernorKind::None` builds it. It lives here rather
/// than in `bas-dvs` because the executor's own tests need a governor below
/// the dvs crate in the dependency tree (`bas-sim` cannot depend on
/// `bas-dvs` without a cycle).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSpeed;

impl FrequencyGovernor for MaxSpeed {
    fn name(&self) -> &'static str {
        "none(fmax)"
    }

    fn frequency(&mut self, _state: &SimState) -> f64 {
        f64::INFINITY // clamped to fmax by the executor
    }

    fn event_driven(&self) -> bool {
        true // a constant is trivially event-driven
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::TaskSet;

    #[test]
    fn max_speed_asks_for_infinity() {
        let mut g = MaxSpeed;
        let state = SimState::new(TaskSet::new());
        assert_eq!(g.frequency(&state), f64::INFINITY);
        assert_eq!(g.name(), "none(fmax)");
    }
}
