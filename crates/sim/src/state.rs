//! Simulation state — the scheduler-visible view of the world.
//!
//! [`SimState`] tracks, for every periodic graph, its active instance (if
//! any): per-node progress, the instance's absolute deadline, and the
//! bookkeeping the paper's algorithms need — remaining worst-case work for
//! laEDF/feasibility checks, and the ccEDF `WCi` (instance total with actuals
//! substituted for completed nodes, §4.1).
//!
//! The executor mutates this state; governors and policies receive `&SimState`
//! and can only observe. Observation deliberately excludes each node's
//! sampled *actual* demand — schedulers learn it only at completion, exactly
//! like the systems the paper models.
//!
//! ## Processing elements and the ambient scope
//!
//! On a multi-PE platform every node is assigned to one processing element
//! by a [`Mapping`], and each PE runs its own governor/policy pair. The
//! engine consults those per-PE schedulers with the PE set as the state's
//! **ambient scope** ([`SimState::scope`]): while a scope is set, the
//! aggregate observations — [`SimState::remaining_wc`],
//! [`SimState::wci_effective`], [`SimState::static_cycles`],
//! [`SimState::effective_utilization_hz`],
//! [`SimState::static_utilization_hz`] — report only the work mapped to
//! that PE, so an unmodified uniprocessor governor (ccEDF, laEDF, …)
//! transparently steers *its own element*. Without a scope (the default,
//! and what unit tests see) the same methods report the global view. The
//! per-PE bookkeeping is maintained incrementally with exactly the same
//! arithmetic as the global values, so on a 1-PE platform the scoped and
//! global views are bit-identical — the compatibility guarantee the whole
//! refactor rests on.

use crate::calendar::Calendar;
use crate::time;
use crate::types::TaskRef;
use bas_cpu::Interconnect;
use bas_taskgraph::{GraphId, Mapping, NodeId, TaskSet};
use std::cell::Cell;

/// A lazily recomputed `f64` observation.
///
/// The cached fold is recomputed — with **exactly** the historical term
/// sequence, so results stay bit-identical — only after a mutation marked
/// it dirty. Interior mutability keeps the observation API `&self` (the
/// whole point: governors and policies re-read these many times between
/// mutations).
#[derive(Debug, Clone)]
struct Memo {
    value: Cell<f64>,
    dirty: Cell<bool>,
}

impl Memo {
    fn new() -> Self {
        Memo { value: Cell::new(0.0), dirty: Cell::new(true) }
    }

    #[inline]
    fn invalidate(&self) {
        self.dirty.set(true);
    }

    #[inline]
    fn get_or(&self, fold: impl FnOnce() -> f64) -> f64 {
        if self.dirty.get() {
            self.value.set(fold());
            self.dirty.set(false);
        }
        self.value.get()
    }
}

/// The scheduler-visible digest of a mounted battery.
///
/// The engine refreshes this snapshot on [`SimState`] after every
/// constant-current slice the battery absorbs, so governors and policies can
/// react to state-of-charge at the very next scheduling point — the coupling
/// the paper's "battery aware" premise requires. The underlying
/// `bas_battery::BatteryModel` itself stays engine-private; schedulers only
/// ever see this view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryView {
    /// Remaining fraction of the battery's *theoretical* capacity, `[0, 1]`.
    /// Well models can be exhausted with charge left here — that stranded
    /// charge is precisely the loss battery-aware scheduling fights.
    pub state_of_charge: f64,
    /// Total charge delivered so far, coulombs.
    pub charge_delivered: f64,
    /// True once the battery has been exhausted.
    pub exhausted: bool,
}

impl BatteryView {
    /// Snapshot a battery model — the one place the digest is derived, used
    /// both at mount time and after every absorbed slice.
    pub fn of(battery: &dyn bas_battery::BatteryModel) -> Self {
        BatteryView {
            state_of_charge: battery.state_of_charge(),
            charge_delivered: battery.charge_delivered(),
            exhausted: battery.is_exhausted(),
        }
    }
}

/// Progress of one node within the active instance.
#[derive(Debug, Clone)]
pub(crate) struct NodeProgress {
    /// WCET in cycles (copied from the graph for cache friendliness).
    pub wcet: f64,
    /// Sampled actual demand in cycles — executor-private.
    pub actual: f64,
    /// Cycles executed so far in this instance.
    pub executed: f64,
    /// Completed flag.
    pub done: bool,
    /// Earliest time every cross-PE input payload has arrived (0 until a
    /// remote predecessor completes; only ever raised when an interconnect
    /// is mounted).
    pub data_ready: f64,
}

impl NodeProgress {
    /// Worst-case cycles still to run, from the scheduler's viewpoint.
    #[inline]
    pub fn remaining_wc(&self) -> f64 {
        if self.done {
            0.0
        } else {
            (self.wcet - self.executed).max(0.0)
        }
    }

    /// Actual cycles still to run — executor-private truth.
    #[inline]
    pub fn remaining_actual(&self) -> f64 {
        if self.done {
            0.0
        } else {
            (self.actual - self.executed).max(0.0)
        }
    }
}

/// State of one periodic graph.
#[derive(Debug, Clone)]
pub(crate) struct GraphProgress {
    /// Index of the next instance to release.
    pub next_instance: u64,
    /// True while an instance is released and unfinished.
    pub active: bool,
    /// Absolute deadline of the active instance (valid while `active`).
    pub deadline: f64,
    /// Per-node progress (valid while `active`).
    pub nodes: Vec<NodeProgress>,
    /// Precedence-free incomplete nodes of the active instance, sorted by
    /// node index — maintained incrementally on release/completion so the
    /// per-step ready scan is O(ready) instead of O(nodes × edges).
    pub ready: Vec<NodeId>,
    /// Nodes whose predecessors are all complete but whose cross-PE input
    /// payloads are still in flight, with their arrival times — sorted by
    /// node index; promoted into `ready` once the clock reaches the
    /// arrival. Always empty without a mounted interconnect.
    pub pending: Vec<(NodeId, f64)>,
    /// Count of incomplete nodes in the active instance.
    pub unfinished: usize,
    /// ccEDF's `WCi`: Σ (done ? actual : wcet) over the instance (§4.1).
    pub wci_effective: f64,
    /// The per-PE split of `wci_effective`, maintained with the identical
    /// incremental updates (index = PE). On a 1-PE platform `wci_pe[0]`
    /// equals `wci_effective` bit for bit.
    pub wci_pe: Vec<f64>,
}

/// The scheduler-visible simulation state.
#[derive(Debug, Clone)]
pub struct SimState {
    set: TaskSet,
    /// Node-to-PE assignment ([`Mapping::single_pe`] by default).
    mapping: Mapping,
    /// `static_pe[graph][pe]`: worst-case cycles of the graph mapped onto
    /// the PE (exact integers; the scoped utilization numerators).
    static_pe: Vec<Vec<u64>>,
    now: f64,
    graphs: Vec<GraphProgress>,
    /// Scratch: EDF-ordered active graphs (rebuilt when dirty).
    edf_order: Vec<GraphId>,
    edf_dirty: bool,
    /// Snapshot of the mounted battery (None without one).
    battery: Option<BatteryView>,
    /// The ambient PE scope aggregate observations filter by.
    scope: Option<usize>,
    /// Per-PE: the task currently occupying the element, if any.
    running: Vec<Option<TaskRef>>,
    /// Per-PE: the last reference frequency announced for the element.
    fref: Vec<Option<f64>>,
    /// The platform's interconnect, when mounted: cross-PE DAG edges then
    /// charge `latency + bytes/bandwidth` before the successor becomes
    /// ready. `None` (the default) keeps the historical free-transfer
    /// behaviour bit for bit.
    transfer: Option<Interconnect>,
    /// The event calendar: next release per graph and earliest in-flight
    /// transfer arrival per graph are maintained here incrementally (the
    /// engine additionally keys its per-step completion/leg entries).
    cal: Calendar,
    /// Per-PE ready queues — `ready_pe[pe]` holds exactly the tasks of
    /// [`SimState::ready_tasks`] mapped to the PE, sorted `(graph, node)`,
    /// partitioned incrementally at release/unlock/promotion time instead
    /// of filtered per PE per step.
    ready_pe: Vec<Vec<TaskRef>>,
    /// Per-PE monotone counter, bumped on every `ready_pe[pe]` mutation —
    /// the engine's dirty flag for "this PE's ready queue changed".
    ready_epoch: Vec<u64>,
    /// Monotone counter bumped whenever the active-instance set or a
    /// deadline changes (release, abandon, instance completion) — the
    /// exact invalidation points of anything derived from the EDF order.
    epoch: u64,
    /// Per-graph memo of the global remaining-worst-case fold.
    rem_wc: Vec<Memo>,
    /// `rem_wc_pe[graph][pe]`: memo of the scoped fold. Empty on 1-PE
    /// platforms (the scoped read is the global one there).
    rem_wc_pe: Vec<Vec<Memo>>,
    /// `pe_nodes[graph][pe]`: the graph's nodes mapped to the PE in node
    /// order — the exact term sequence of the historical scoped filter.
    /// Empty on 1-PE platforms.
    pe_nodes: Vec<Vec<Vec<NodeId>>>,
    /// Memo of the global effective-utilization fold.
    eff_util: Memo,
    /// Per-PE memos of the scoped effective-utilization fold. Empty on
    /// 1-PE platforms.
    eff_util_pe: Vec<Memo>,
    /// The static utilization folds — constants of the set and mapping.
    static_util: f64,
    static_util_pe: Vec<f64>,
}

impl SimState {
    /// Fresh uniprocessor state at t = 0 with no instance released yet
    /// (everything mapped to PE 0).
    ///
    /// Public so governor/policy unit tests (in `bas-dvs` / `bas-core`) can
    /// drive states directly; simulations should use the executor.
    pub fn new(set: TaskSet) -> Self {
        let mapping = Mapping::single_pe(&set);
        SimState::with_mapping(set, mapping)
    }

    /// Fresh state with an explicit node-to-PE [`Mapping`] (the multi-PE
    /// entry point; `Simulation::with_platform` calls this).
    pub fn with_mapping(set: TaskSet, mapping: Mapping) -> Self {
        let pes = mapping.pes();
        let static_pe: Vec<Vec<u64>> = set
            .iter()
            .map(|(gid, _)| (0..pes).map(|pe| mapping.static_cycles_on(&set, gid, pe)).collect())
            .collect();
        let graphs = set
            .iter()
            .map(|(gid, pg)| GraphProgress {
                next_instance: 0,
                active: false,
                deadline: 0.0,
                nodes: Vec::new(),
                ready: Vec::new(),
                pending: Vec::new(),
                unfinished: 0,
                // Before the first release the scheduler must budget the
                // full worst case.
                wci_effective: pg.graph().total_wcet() as f64,
                wci_pe: static_pe[gid.index()].iter().map(|&c| c as f64).collect(),
            })
            .collect();
        let mut cal = Calendar::new(set.len(), pes);
        for (gid, pg) in set.iter() {
            cal.set_release(gid, pg.release_time(0));
        }
        // The scoped folds only differ from the global ones on a multi-PE
        // platform; a 1-PE scope routes to the global path (bit-identical
        // by the wci invariant), so skip the per-PE structures there.
        let (rem_wc_pe, pe_nodes) = if pes > 1 {
            let rem: Vec<Vec<Memo>> =
                set.iter().map(|_| (0..pes).map(|_| Memo::new()).collect()).collect();
            let nodes: Vec<Vec<Vec<NodeId>>> = set
                .iter()
                .map(|(gid, pg)| {
                    let mut per: Vec<Vec<NodeId>> = vec![Vec::new(); pes];
                    for n in pg.graph().node_ids() {
                        per[mapping.pe_of(gid, n)].push(n);
                    }
                    per
                })
                .collect();
            (rem, nodes)
        } else {
            (Vec::new(), Vec::new())
        };
        // The static utilizations never change: fold them once, with the
        // identical expressions the scoped observation used per call.
        let static_util: f64 =
            set.graph_ids().map(|g| set[g].graph().total_wcet() as f64 / set[g].period()).sum();
        let static_util_pe: Vec<f64> = (0..pes)
            .map(|pe| {
                set.graph_ids().map(|g| static_pe[g.index()][pe] as f64 / set[g].period()).sum()
            })
            .collect();
        SimState {
            rem_wc: set.iter().map(|_| Memo::new()).collect(),
            rem_wc_pe,
            pe_nodes,
            eff_util: Memo::new(),
            eff_util_pe: if pes > 1 { (0..pes).map(|_| Memo::new()).collect() } else { Vec::new() },
            static_util,
            static_util_pe,
            cal,
            ready_pe: vec![Vec::new(); pes],
            ready_epoch: vec![0; pes],
            epoch: 0,
            set,
            mapping,
            static_pe,
            now: 0.0,
            graphs,
            edf_order: Vec::new(),
            edf_dirty: true,
            battery: None,
            scope: None,
            running: vec![None; pes],
            fref: vec![None; pes],
            transfer: None,
        }
    }

    // ------------------------------------------------------------------
    // Observation API (for governors & policies)
    // ------------------------------------------------------------------

    /// Current simulation time, seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The task set being scheduled.
    #[inline]
    pub fn set(&self) -> &TaskSet {
        &self.set
    }

    /// The node-to-PE assignment in force.
    #[inline]
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Number of processing elements of the platform.
    #[inline]
    pub fn num_pes(&self) -> usize {
        self.running.len()
    }

    /// The PE `task` is mapped to.
    #[inline]
    pub fn pe_of(&self, task: TaskRef) -> usize {
        self.mapping.pe_of(task.graph, task.node)
    }

    /// The ambient PE scope, if any. While set, the aggregate observations
    /// ([`SimState::remaining_wc`], [`SimState::wci_effective`],
    /// [`SimState::static_cycles`], the utilization sums) report only the
    /// work mapped to that PE. The engine sets it around every per-PE
    /// governor/policy consultation; it is `None` otherwise.
    #[inline]
    pub fn scope(&self) -> Option<usize> {
        self.scope
    }

    /// The task currently occupying `pe` (None while it idles).
    #[inline]
    pub fn running_on(&self, pe: usize) -> Option<TaskRef> {
        self.running[pe]
    }

    /// The last reference frequency announced for `pe` (None before the
    /// first busy decision).
    #[inline]
    pub fn fref_on(&self, pe: usize) -> Option<f64> {
        self.fref[pe]
    }

    /// True while `graph` has a released, unfinished instance.
    #[inline]
    pub fn is_active(&self, graph: GraphId) -> bool {
        self.graphs[graph.index()].active
    }

    /// Absolute deadline of the active instance of `graph`.
    #[inline]
    pub fn deadline(&self, graph: GraphId) -> Option<f64> {
        let g = &self.graphs[graph.index()];
        g.active.then_some(g.deadline)
    }

    /// Remaining worst-case cycles of the active instance of `graph`
    /// (0 when inactive) — the `WCj` of the feasibility check and laEDF's
    /// `c_left`. Scope-aware: under an ambient PE scope only nodes mapped
    /// to that PE count.
    /// Both fold variants are memoized per graph (and per PE for the
    /// scoped one) and recomputed only after an instance of the graph
    /// progressed — between mutations every re-read is O(1). The refold
    /// adds the same terms in the same order as the historical rescan, so
    /// the cached value is bit-identical to it.
    pub fn remaining_wc(&self, graph: GraphId) -> f64 {
        let gi = graph.index();
        let g = &self.graphs[gi];
        if !g.active {
            return 0.0;
        }
        match self.scope {
            // A 1-PE scope sees every node: the scoped filter would pass
            // all of them and add the same values in the same order, so
            // the global memo serves it bit-identically (this is the
            // uniprocessor hot path; `pe_nodes` is only built multi-PE).
            Some(pe) if !self.pe_nodes.is_empty() => self.rem_wc_pe[gi][pe].get_or(|| {
                self.pe_nodes[gi][pe].iter().map(|&n| g.nodes[n.index()].remaining_wc()).sum()
            }),
            _ => self.rem_wc[gi].get_or(|| g.nodes.iter().map(NodeProgress::remaining_wc).sum()),
        }
    }

    /// Remaining worst-case cycles of one node (0 if done or inactive).
    pub fn remaining_wc_node(&self, task: TaskRef) -> f64 {
        let g = &self.graphs[task.graph.index()];
        if !g.active {
            return 0.0;
        }
        g.nodes[task.node.index()].remaining_wc()
    }

    /// The node's static WCET in cycles.
    pub fn wcet(&self, task: TaskRef) -> f64 {
        self.set[task.graph].graph().wcet(task.node) as f64
    }

    /// True when the node has completed within the active instance.
    pub fn is_done(&self, task: TaskRef) -> bool {
        let g = &self.graphs[task.graph.index()];
        g.active && g.nodes[task.node.index()].done
    }

    /// ccEDF's effective `WCi` of `graph`: the instance's worst case with
    /// actuals substituted for completed nodes (§4.1). After the whole
    /// instance completes this stays at `Σ acij` — "as long as the new
    /// instance of the taskgraph Ti is not released, whereupon we switch
    /// back to the worst case specification" — which is what lets ccEDF keep
    /// the frequency low between an early finish and the next release.
    /// Scope-aware: under an ambient PE scope this is the PE's share.
    pub fn wci_effective(&self, graph: GraphId) -> f64 {
        let g = &self.graphs[graph.index()];
        match self.scope {
            None => g.wci_effective,
            Some(pe) => g.wci_pe[pe],
        }
    }

    /// The graph's static worst case in cycles, as the schedulers budget it.
    /// Scope-aware: under an ambient PE scope, only the cycles mapped to
    /// that PE (laEDF's per-graph `Ci` term).
    pub fn static_cycles(&self, graph: GraphId) -> f64 {
        match self.scope {
            None => self.set[graph].graph().total_wcet() as f64,
            Some(pe) => self.static_pe[graph.index()][pe] as f64,
        }
    }

    /// ccEDF's effective utilization `Σ WCi/Di` in Hz (cycles per second).
    /// Scope-aware through [`SimState::wci_effective`]. Memoized — the
    /// fold only reruns after a completion or release changed a `WCi`
    /// (with the historical term order, so the value is bit-identical).
    pub fn effective_utilization_hz(&self) -> f64 {
        let fold =
            || self.set.graph_ids().map(|g| self.wci_effective(g) / self.set[g].period()).sum();
        match self.scope {
            // A 1-PE scope reads `wci_pe[0]`, which equals the global
            // `wci_effective` bit for bit, so the global memo serves it.
            Some(pe) if !self.eff_util_pe.is_empty() => self.eff_util_pe[pe].get_or(fold),
            _ => self.eff_util.get_or(fold),
        }
    }

    /// Static worst-case utilization in Hz. Scope-aware through
    /// [`SimState::static_cycles`]. A constant of the set and mapping,
    /// folded once at construction.
    pub fn static_utilization_hz(&self) -> f64 {
        match self.scope {
            None => self.static_util,
            Some(pe) => self.static_util_pe[pe],
        }
    }

    /// Active graphs ordered by absolute deadline (ties broken by id) — the
    /// "EDF order" the feasibility check indexes into.
    pub fn edf_order(&self) -> &[GraphId] {
        debug_assert!(!self.edf_dirty, "executor must refresh EDF order");
        &self.edf_order
    }

    /// The active graph with the earliest absolute deadline. Scope-aware:
    /// under an ambient PE scope, the earliest-deadline active graph with
    /// at least one node mapped to that PE — the graph a
    /// most-imminent-scope policy on the element should serve (a graph
    /// with no work here cannot occupy this PE at all).
    pub fn most_imminent(&self) -> Option<GraphId> {
        match self.scope {
            None => self.edf_order().first().copied(),
            Some(pe) => {
                self.edf_order().iter().copied().find(|g| self.static_pe[g.index()][pe] > 0)
            }
        }
    }

    /// Collect the ready tasks: nodes of active instances whose predecessors
    /// are all complete and which are themselves incomplete. Output is sorted
    /// (graph, node) for determinism.
    ///
    /// Readiness is maintained incrementally (roots at release, successor
    /// unlocks at completion), so this is a concatenation of the per-graph
    /// ready lists, not a rescan of every node and edge.
    pub fn ready_tasks(&self, out: &mut Vec<TaskRef>) {
        out.clear();
        for (index, g) in self.graphs.iter().enumerate() {
            if !g.active {
                continue;
            }
            let gid = GraphId::from_index(index);
            out.extend(g.ready.iter().map(|&node| TaskRef::new(gid, node)));
        }
    }

    /// The mounted battery's scheduler-visible snapshot, refreshed by the
    /// engine after every slice the battery absorbs; `None` when the
    /// simulation runs without a battery. This is what makes battery-aware
    /// governors/policies expressible — e.g. throttle once
    /// `state_of_charge` drops below a threshold.
    #[inline]
    pub fn battery(&self) -> Option<BatteryView> {
        self.battery
    }

    /// Release time of the next instance of `graph`.
    pub fn next_release(&self, graph: GraphId) -> f64 {
        self.set[graph].release_time(self.graphs[graph.index()].next_instance)
    }

    /// Earliest upcoming release across all graphs — an O(1) peek at the
    /// event calendar's release heap (re-keyed at each release).
    pub fn next_release_any(&self) -> f64 {
        self.cal.next_release()
    }

    /// The mounted interconnect, if any; see [`SimState::set_transfer`].
    #[inline]
    pub fn transfer(&self) -> Option<Interconnect> {
        self.transfer
    }

    /// Earliest in-flight cross-PE payload arrival across all graphs —
    /// `f64::INFINITY` when nothing is in flight. A scheduling point the
    /// engine folds into its next-event bound so stalled successors wake
    /// exactly when their data lands.
    pub fn next_pending_any(&self) -> f64 {
        // O(1): the calendar keys each graph's earliest in-flight arrival
        // (min-updated on park, recomputed on promotion, cleared with the
        // instance), so the heap root is the global minimum.
        self.cal.next_transfer()
    }

    /// The PE's ready queue: the tasks of [`SimState::ready_tasks`] mapped
    /// to `pe`, sorted `(graph, node)` — partitioned incrementally at
    /// release/unlock/promotion time, not filtered per step.
    #[inline]
    pub fn ready_on(&self, pe: usize) -> &[TaskRef] {
        &self.ready_pe[pe]
    }

    /// Monotone counter bumped on every mutation of `pe`'s ready queue —
    /// the engine's per-PE dirty flag ("did this element's schedulable set
    /// change since I last consulted its governor/policy pair?").
    #[inline]
    pub fn ready_epoch(&self, pe: usize) -> u64 {
        self.ready_epoch[pe]
    }

    /// Monotone counter bumped whenever the active-instance set or an
    /// absolute deadline changes (release, abandon, instance completion) —
    /// exactly the events that can reorder anything derived from the EDF
    /// order, so schedulers may cache such derivations against it.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The event calendar (next release per graph, earliest in-flight
    /// transfer arrival per graph, and — within a step — the engine's
    /// planned completion and battery-leg entries).
    #[inline]
    pub fn calendar(&self) -> &Calendar {
        &self.cal
    }

    /// Mutable calendar access for the engine's per-step entries.
    #[inline]
    pub(crate) fn calendar_mut(&mut self) -> &mut Calendar {
        &mut self.cal
    }

    // ------------------------------------------------------------------
    // Mutation API (executor-internal)
    // ------------------------------------------------------------------

    /// Advance the clock (monotone). Engine/test API.
    pub fn set_now(&mut self, t: f64) {
        debug_assert!(t >= self.now - time::ABS_EPS, "time went backwards");
        self.now = t;
    }

    pub(crate) fn graph_ref(&self, graph: GraphId) -> &GraphProgress {
        &self.graphs[graph.index()]
    }

    /// Install or refresh the battery snapshot. Engine/test API — governor
    /// and policy unit tests use this to fabricate state-of-charge
    /// conditions without running a battery co-simulation.
    pub fn set_battery_view(&mut self, view: Option<BatteryView>) {
        self.battery = view;
    }

    /// Set the ambient PE scope. Engine/test API — the engine brackets
    /// every per-PE governor/policy call with it; tests use it to probe the
    /// scoped views directly.
    pub fn set_scope(&mut self, scope: Option<usize>) {
        debug_assert!(scope.is_none_or(|pe| pe < self.num_pes()));
        self.scope = scope;
    }

    /// Record which task occupies `pe`. Engine/test API.
    pub fn set_running(&mut self, pe: usize, task: Option<TaskRef>) {
        self.running[pe] = task;
    }

    /// Record the reference frequency announced for `pe`. Engine/test API.
    pub fn set_fref(&mut self, pe: usize, fref: f64) {
        self.fref[pe] = Some(fref);
    }

    /// Mount (or unmount) the platform's interconnect. Engine/test API —
    /// the engine installs the platform's configured interconnect at
    /// construction; `None` keeps cross-PE transfers free (the historical
    /// behaviour, bit for bit).
    pub fn set_transfer(&mut self, transfer: Option<Interconnect>) {
        self.transfer = transfer;
    }

    /// Promote every pending successor whose cross-PE payload has arrived
    /// by `t` into its graph's ready list. Engine/test API — a no-op
    /// without a mounted interconnect (pending lists stay empty then).
    pub fn promote_pending(&mut self, t: f64) {
        // O(1) early exit off the calendar: its transfer root is the
        // minimum over every in-flight arrival, so nothing is due unless
        // the root is (the overwhelmingly common case per step).
        if !time::approx_le(self.cal.next_transfer(), t) {
            return;
        }
        let single_pe = self.ready_pe.len() == 1;
        for (index, g) in self.graphs.iter_mut().enumerate() {
            if !g.active || g.pending.is_empty() {
                continue;
            }
            let gid = GraphId::from_index(index);
            let mut promoted = false;
            let mut i = 0;
            while i < g.pending.len() {
                if time::approx_le(g.pending[i].1, t) {
                    let (node, _) = g.pending.remove(i);
                    if let Err(pos) = g.ready.binary_search(&node) {
                        g.ready.insert(pos, node);
                        let pe = if single_pe { 0 } else { self.mapping.pe_of(gid, node) };
                        let task = TaskRef::new(gid, node);
                        if let Err(qpos) = self.ready_pe[pe].binary_search(&task) {
                            self.ready_pe[pe].insert(qpos, task);
                        }
                        self.ready_epoch[pe] += 1;
                    }
                    promoted = true;
                } else {
                    i += 1;
                }
            }
            if promoted {
                // Re-key the graph's calendar entry to the arrivals left.
                let min = g.pending.iter().map(|&(_, at)| at).fold(f64::INFINITY, f64::min);
                self.cal.set_transfer(gid, min);
            }
        }
    }

    /// Release the next instance of `graph` with pre-sampled actuals.
    /// Returns the instance index released. Engine/test API.
    pub fn release(&mut self, graph: GraphId, actuals: Vec<f64>) -> u64 {
        self.release_from(graph, &actuals)
    }

    /// Like [`SimState::release`], but borrowing the actuals — the engine's
    /// hot-loop entry point, which reuses one sampling scratch buffer across
    /// every release instead of allocating a `Vec` per instance. The
    /// per-node progress buffer is also reused: completions only `clear()`
    /// it, so after the first hyperperiod releases run allocation-free.
    pub fn release_from(&mut self, graph: GraphId, actuals: &[f64]) -> u64 {
        let period = self.set[graph].period();
        let pg = &self.set[graph];
        let g = &mut self.graphs[graph.index()];
        debug_assert!(!g.active, "release over an active instance");
        let instance = g.next_instance;
        let release_t = pg.release_time(instance);
        let graph_ref = self.set[graph].graph();
        g.deadline = release_t + period;
        g.nodes.clear();
        g.nodes.extend(graph_ref.node_ids().zip(actuals).map(|(n, &actual)| {
            let wcet = graph_ref.wcet(n) as f64;
            debug_assert!(actual > 0.0 && actual <= wcet + 1e-9);
            NodeProgress { wcet, actual, executed: 0.0, done: false, data_ready: 0.0 }
        }));
        g.ready.clear();
        g.ready.extend(graph_ref.node_ids().filter(|&n| graph_ref.predecessors(n).is_empty()));
        g.pending.clear();
        g.unfinished = g.nodes.len();
        g.wci_effective = graph_ref.total_wcet() as f64;
        for (pe, wci) in g.wci_pe.iter_mut().enumerate() {
            *wci = self.static_pe[graph.index()][pe] as f64;
        }
        g.active = true;
        g.next_instance += 1;
        // Partition the roots into their PEs' ready queues.
        let single_pe = self.ready_pe.len() == 1;
        for &n in &g.ready {
            let pe = if single_pe { 0 } else { self.mapping.pe_of(graph, n) };
            let task = TaskRef::new(graph, n);
            if let Err(pos) = self.ready_pe[pe].binary_search(&task) {
                self.ready_pe[pe].insert(pos, task);
            }
            self.ready_epoch[pe] += 1;
        }
        // Re-key the calendar (the next release moved one period out; the
        // pending list was cleared) and drop every memo the reset
        // progress/WCi invalidates.
        self.cal.set_release(graph, pg.release_time(g.next_instance));
        self.cal.set_transfer(graph, f64::INFINITY);
        self.rem_wc[graph.index()].invalidate();
        if let Some(per) = self.rem_wc_pe.get(graph.index()) {
            for memo in per {
                memo.invalidate();
            }
        }
        self.eff_util.invalidate();
        for memo in &self.eff_util_pe {
            memo.invalidate();
        }
        self.epoch += 1;
        self.edf_dirty = true;
        instance
    }

    /// Drop the active instance (deadline-miss recovery in lenient mode).
    /// Engine/test API.
    pub fn abandon(&mut self, graph: GraphId) {
        let single_pe = self.ready_pe.len() == 1;
        {
            // Retire the instance's ready tasks from their PE queues.
            let g = &self.graphs[graph.index()];
            for &n in &g.ready {
                let pe = if single_pe { 0 } else { self.mapping.pe_of(graph, n) };
                if let Ok(pos) = self.ready_pe[pe].binary_search(&TaskRef::new(graph, n)) {
                    self.ready_pe[pe].remove(pos);
                }
                self.ready_epoch[pe] += 1;
            }
        }
        let g = &mut self.graphs[graph.index()];
        g.active = false;
        g.nodes.clear();
        g.ready.clear();
        g.pending.clear();
        g.unfinished = 0;
        self.cal.set_transfer(graph, f64::INFINITY);
        self.edf_dirty = true;
        self.epoch += 1;
    }

    /// Advance `task` by `cycles` executed cycles; marks completion when the
    /// actual demand is reached. Returns `Some(actual)` on completion.
    /// Engine/test API. Completion is stamped at the current clock — the
    /// engine's completion path uses [`SimState::advance_at`] with the
    /// exact completion time instead (the clock only advances at step end).
    pub fn advance(&mut self, task: TaskRef, cycles: f64) -> Option<f64> {
        self.advance_at(task, cycles, self.now)
    }

    /// Like [`SimState::advance`], with an explicit completion timestamp:
    /// when the node completes at `t_complete` and an interconnect is
    /// mounted, every cross-PE successor's payload starts its transfer
    /// there, and successors whose data is still in flight park in the
    /// pending list instead of becoming ready.
    pub fn advance_at(&mut self, task: TaskRef, cycles: f64, t_complete: f64) -> Option<f64> {
        let gi = task.graph.index();
        let graph_ref = self.set[task.graph].graph();
        let single_pe = self.ready_pe.len() == 1;
        let task_pe = if single_pe { 0 } else { self.mapping.pe_of(task.graph, task.node) };
        let g = &mut self.graphs[gi];
        debug_assert!(g.active);
        let np = &mut g.nodes[task.node.index()];
        debug_assert!(!np.done);
        np.executed += cycles;
        // Any progress shrinks the remaining worst case: drop the memos.
        self.rem_wc[gi].invalidate();
        if let Some(per) = self.rem_wc_pe.get(gi) {
            per[task_pe].invalidate();
        }
        if np.executed + 1e-6 >= np.actual {
            np.executed = np.actual;
            np.done = true;
            let actual = np.actual;
            let wcet = np.wcet;
            g.unfinished -= 1;
            // ccEDF §4.1: WCi := WCi + ac − wc on node completion — applied
            // identically to the global value and the owning PE's share.
            g.wci_effective += actual - wcet;
            g.wci_pe[task_pe] += actual - wcet;
            self.eff_util.invalidate();
            if let Some(memo) = self.eff_util_pe.get(task_pe) {
                memo.invalidate();
            }
            if g.unfinished == 0 {
                // The last incomplete node just finished, so the ready
                // list holds `task` alone — retire it from its PE queue.
                debug_assert!(g.pending.is_empty());
                for &n in &g.ready {
                    let pe = if single_pe { 0 } else { self.mapping.pe_of(task.graph, n) };
                    if let Ok(pos) = self.ready_pe[pe].binary_search(&TaskRef::new(task.graph, n)) {
                        self.ready_pe[pe].remove(pos);
                    }
                    self.ready_epoch[pe] += 1;
                }
                g.active = false;
                g.nodes.clear();
                g.ready.clear();
                self.edf_dirty = true;
                self.epoch += 1;
            } else {
                // Retire the node from the ready list and unlock any
                // successor whose predecessors are now all complete.
                if let Ok(pos) = g.ready.binary_search(&task.node) {
                    g.ready.remove(pos);
                    if let Ok(qpos) = self.ready_pe[task_pe].binary_search(&task) {
                        self.ready_pe[task_pe].remove(qpos);
                    }
                    self.ready_epoch[task_pe] += 1;
                }
                // With an interconnect mounted, every edge whose endpoints
                // sit on different PEs ships its payload starting now: the
                // successor cannot start before its latest cross-PE arrival.
                if let Some(ic) = self.transfer {
                    for (succ, bytes) in graph_ref.out_edges(task.node) {
                        if self.mapping.pe_of(task.graph, succ) != task_pe {
                            let arrival = t_complete + ic.transfer_time(bytes);
                            let dr = &mut g.nodes[succ.index()].data_ready;
                            if arrival > *dr {
                                *dr = arrival;
                            }
                        }
                    }
                }
                for &succ in graph_ref.successors(task.node) {
                    if g.nodes[succ.index()].done {
                        continue;
                    }
                    if graph_ref.predecessors(succ).iter().all(|p| g.nodes[p.index()].done) {
                        let data_ready = g.nodes[succ.index()].data_ready;
                        if self.transfer.is_some() && !time::approx_le(data_ready, t_complete) {
                            // Payload still in flight: park until it lands.
                            let pos = g.pending.partition_point(|&(n, _)| n < succ);
                            if g.pending.get(pos).map(|&(n, _)| n) != Some(succ) {
                                g.pending.insert(pos, (succ, data_ready));
                                // A parked arrival can only lower the
                                // graph's calendar entry: min-update it.
                                if data_ready < self.cal.transfer_of(task.graph) {
                                    self.cal.set_transfer(task.graph, data_ready);
                                }
                            }
                        } else if let Err(pos) = g.ready.binary_search(&succ) {
                            g.ready.insert(pos, succ);
                            let succ_pe =
                                if single_pe { 0 } else { self.mapping.pe_of(task.graph, succ) };
                            let succ_task = TaskRef::new(task.graph, succ);
                            if let Err(qpos) = self.ready_pe[succ_pe].binary_search(&succ_task) {
                                self.ready_pe[succ_pe].insert(qpos, succ_task);
                            }
                            self.ready_epoch[succ_pe] += 1;
                        }
                    }
                }
            }
            Some(actual)
        } else {
            None
        }
    }

    /// Rebuild the EDF order if any release/completion invalidated it.
    /// Engine/test API (call after `release`/`advance` before observing).
    pub fn refresh_edf(&mut self) {
        if !self.edf_dirty {
            return;
        }
        self.edf_order.clear();
        for (gid, _) in self.set.iter() {
            if self.graphs[gid.index()].active {
                self.edf_order.push(gid);
            }
        }
        let graphs = &self.graphs;
        // Distinct graph ids make this a strict total order, so the
        // unstable sort (no temporary buffer) permutes exactly like sort_by.
        self.edf_order.sort_unstable_by(|a, b| {
            graphs[a.index()]
                .deadline
                .partial_cmp(&graphs[b.index()].deadline)
                .expect("deadlines are finite")
                .then(a.cmp(b))
        });
        self.edf_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bas_taskgraph::{NodeId, PeriodicTaskGraph, TaskGraphBuilder};

    fn two_graph_state() -> SimState {
        // T0: chain a(4)->b(6), D=20. T1: single c(5), D=10.
        let mut b = TaskGraphBuilder::new("T0");
        let a = b.add_node("a", 4);
        let c = b.add_node("b", 6);
        b.add_edge(a, c).unwrap();
        let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap();
        let mut b = TaskGraphBuilder::new("T1");
        b.add_node("c", 5);
        let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap();
        let mut set = TaskSet::new();
        set.push(g0);
        set.push(g1);
        SimState::new(set)
    }

    fn gid(i: usize) -> GraphId {
        GraphId::from_index(i)
    }
    fn tref(g: usize, n: usize) -> TaskRef {
        TaskRef::new(gid(g), NodeId::from_index(n))
    }

    #[test]
    fn fresh_state_has_no_active_instances() {
        let mut s = two_graph_state();
        s.refresh_edf();
        assert!(!s.is_active(gid(0)));
        assert_eq!(s.deadline(gid(0)), None);
        assert!(s.edf_order().is_empty());
        assert_eq!(s.most_imminent(), None);
        let mut ready = Vec::new();
        s.ready_tasks(&mut ready);
        assert!(ready.is_empty());
    }

    #[test]
    fn release_activates_and_orders_by_deadline() {
        let mut s = two_graph_state();
        s.release(gid(0), vec![4.0, 6.0]);
        s.release(gid(1), vec![5.0]);
        s.refresh_edf();
        assert_eq!(s.edf_order(), &[gid(1), gid(0)], "D=10 before D=20");
        assert_eq!(s.most_imminent(), Some(gid(1)));
        assert_eq!(s.deadline(gid(0)), Some(20.0));
        assert_eq!(s.deadline(gid(1)), Some(10.0));
    }

    #[test]
    fn ready_tasks_respect_precedence() {
        let mut s = two_graph_state();
        s.release(gid(0), vec![4.0, 6.0]);
        s.release(gid(1), vec![5.0]);
        s.refresh_edf();
        let mut ready = Vec::new();
        s.ready_tasks(&mut ready);
        // T0.b waits on T0.a; T0.a and T1.c are ready.
        assert_eq!(ready, vec![tref(0, 0), tref(1, 0)]);
    }

    #[test]
    fn completion_unlocks_successors_and_updates_wci() {
        let mut s = two_graph_state();
        s.release(gid(0), vec![2.0, 6.0]); // node a actually needs 2 of 4
        s.refresh_edf();
        assert_eq!(s.wci_effective(gid(0)), 10.0);
        let done = s.advance(tref(0, 0), 2.0);
        assert_eq!(done, Some(2.0));
        // WCi = 10 + (2 - 4) = 8 per the ccEDF update rule.
        assert_eq!(s.wci_effective(gid(0)), 8.0);
        let mut ready = Vec::new();
        s.refresh_edf();
        s.ready_tasks(&mut ready);
        assert_eq!(ready, vec![tref(0, 1)]);
    }

    #[test]
    fn partial_execution_reduces_remaining_wc() {
        let mut s = two_graph_state();
        s.release(gid(0), vec![4.0, 6.0]);
        assert_eq!(s.remaining_wc(gid(0)), 10.0);
        let done = s.advance(tref(0, 0), 1.5);
        assert_eq!(done, None);
        assert_eq!(s.remaining_wc(gid(0)), 8.5);
        assert_eq!(s.remaining_wc_node(tref(0, 0)), 2.5);
    }

    #[test]
    fn finishing_all_nodes_deactivates_the_graph() {
        let mut s = two_graph_state();
        s.release(gid(1), vec![5.0]);
        assert!(s.is_active(gid(1)));
        s.advance(tref(1, 0), 5.0);
        assert!(!s.is_active(gid(1)));
        assert_eq!(s.remaining_wc(gid(1)), 0.0);
        // WCi keeps the actual (= 5 here) until the next release (§4.1).
        assert_eq!(s.wci_effective(gid(1)), 5.0);
    }

    #[test]
    fn next_release_advances_with_instances() {
        let mut s = two_graph_state();
        assert_eq!(s.next_release(gid(1)), 0.0);
        s.release(gid(1), vec![5.0]);
        assert_eq!(s.next_release(gid(1)), 10.0);
        assert_eq!(s.next_release_any(), 0.0, "graph 0 still pending release");
    }

    #[test]
    fn effective_utilization_tracks_completions() {
        let mut s = two_graph_state();
        // Static: 10/20 + 5/10 = 1.0 Hz.
        assert!((s.static_utilization_hz() - 1.0).abs() < 1e-12);
        s.release(gid(0), vec![2.0, 3.0]);
        s.release(gid(1), vec![5.0]);
        assert!((s.effective_utilization_hz() - 1.0).abs() < 1e-12);
        s.advance(tref(0, 0), 2.0);
        // WC0 = 10 + (2-4) = 8 -> U = 8/20 + 5/10 = 0.9.
        assert!((s.effective_utilization_hz() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn abandon_clears_the_instance() {
        let mut s = two_graph_state();
        s.release(gid(0), vec![4.0, 6.0]);
        s.abandon(gid(0));
        assert!(!s.is_active(gid(0)));
        assert_eq!(s.remaining_wc(gid(0)), 0.0);
    }

    #[test]
    fn battery_view_defaults_absent_and_is_settable() {
        let mut s = two_graph_state();
        assert_eq!(s.battery(), None);
        let view = BatteryView { state_of_charge: 0.4, charge_delivered: 120.0, exhausted: false };
        s.set_battery_view(Some(view));
        assert_eq!(s.battery(), Some(view));
        s.set_battery_view(None);
        assert_eq!(s.battery(), None);
    }

    #[test]
    fn wcet_and_done_queries() {
        let mut s = two_graph_state();
        s.release(gid(0), vec![4.0, 6.0]);
        assert_eq!(s.wcet(tref(0, 1)), 6.0);
        assert!(!s.is_done(tref(0, 0)));
        s.advance(tref(0, 0), 4.0);
        assert!(s.is_done(tref(0, 0)));
    }
}
