//! # bas-sim — discrete-event simulator for DVS scheduling of periodic task graphs
//!
//! This crate is the execution substrate of the reproduction: it plays the
//! role of the authors' C simulator (§5). It advances a set of periodic task
//! graphs through time on one DVS processor, driven by two pluggable pieces
//! exactly mirroring the paper's two-level methodology:
//!
//! * a [`FrequencyGovernor`] — computes the reference frequency `fref` at
//!   every scheduling point (release or node completion). Implementations
//!   live in `bas-dvs` (ccEDF, laEDF, no-DVS).
//! * a [`TaskPolicy`] — picks which ready node runs next. Implementations
//!   live in `bas-core` (Random, LTF, STF, pUBS; BAS-1/BAS-2 ready lists with
//!   the feasibility check).
//!
//! The executor ([`executor::Executor`]) is event-driven: the only scheduling
//! points are instance releases and node completions (plus battery death in
//! co-simulation). Between points it runs the chosen node at the governor's
//! `fref`, realized on the discrete operating points per `bas-cpu` (the
//! two-adjacent-frequencies scheme), emitting an execution [`trace::Trace`]
//! whose battery-facing reduction is a [`bas_battery::LoadProfile`].
//!
//! Per the paper's workload model (§5), each node's *actual* computation is
//! sampled per instance — uniformly in 20 %–100 % of its WCET by default
//! ([`workload::UniformFraction`]) — and schedulers only learn a node's
//! actual demand when it completes (slack reclamation).
//!
//! Deadline handling: the model has deadline = period, so at most one
//! instance of a graph is ever active. If an instance is incomplete at its
//! deadline the simulator records a miss and (configurably) panics or drops
//! the stale instance. Every scheduler shipped in this workspace is proven
//! miss-free by property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod executor;
pub mod metrics;
pub mod policy;
pub mod state;
pub mod time;
pub mod trace;
pub mod traits;
pub mod types;
pub mod workload;

pub use error::SimError;
pub use executor::{DeadlineMode, Executor, SimConfig, SimOutcome};
pub use metrics::Metrics;
pub use state::SimState;
pub use traits::{FrequencyGovernor, MaxSpeed, TaskPolicy};
pub use types::TaskRef;
pub use workload::{
    ActualSampler, FixedFraction, FractionTable, PersistentFraction, UniformFraction, WorstCase,
};
