//! # bas-sim — discrete-event simulator for DVS scheduling of periodic task graphs
//!
//! This crate is the execution substrate of the reproduction: it plays the
//! role of the authors' C simulator (§5). It advances a set of periodic task
//! graphs through time on a platform of one or more DVS processing
//! elements (the paper's uniprocessor is the 1-PE instantiation), driven
//! per element by two pluggable pieces
//! exactly mirroring the paper's two-level methodology:
//!
//! * a [`FrequencyGovernor`] — computes the reference frequency `fref` at
//!   every scheduling point (release or node completion). Implementations
//!   live in `bas-dvs` (ccEDF, laEDF, no-DVS).
//! * a [`TaskPolicy`] — picks which ready node runs next. Implementations
//!   live in `bas-core` (Random, LTF, STF, pUBS; BAS-1/BAS-2 ready lists with
//!   the feasibility check).
//!
//! The engine ([`Simulation`]) is event-driven: the only scheduling points
//! are instance releases and node completions (plus battery death in
//! co-simulation). Between points it runs the chosen node at the governor's
//! `fref`, realized on the discrete operating points per `bas-cpu` (the
//! two-adjacent-frequencies scheme). Unlike its run-to-completion
//! predecessor it is a *lifecycle*: [`Simulation::step`] /
//! [`Simulation::run_until`] advance it incrementally, every transition is
//! narrated as a typed [`SimEvent`] to attached [`SimObserver`]s, and
//! [`Simulation::finish`] moves the results out. Trace recording
//! ([`TraceRecorder`]), metrics accounting ([`MetricsCollector`]) and the
//! O(1)-memory `bas-events/v2` JSONL export ([`JsonlWriter`]) are all just
//! observers of that stream; an in-memory [`trace::Trace`]'s battery-facing
//! reduction is a [`bas_battery::LoadProfile`].
//!
//! A mounted battery ([`Simulation::mount_battery`]) lives *inside* the
//! engine: it absorbs every emitted slice, can end the run, and its
//! scheduler-visible [`BatteryView`] is kept fresh on [`SimState`] — the
//! hook battery-aware governors and policies react to.
//!
//! Per the paper's workload model (§5), each node's *actual* computation is
//! sampled per instance — uniformly in 20 %–100 % of its WCET by default
//! ([`workload::UniformFraction`]) — and schedulers only learn a node's
//! actual demand when it completes (slack reclamation).
//!
//! Deadline handling: the model has deadline = period, so at most one
//! instance of a graph is ever active. If an instance is incomplete at its
//! deadline the simulator records a miss and (configurably) panics or drops
//! the stale instance. Every scheduler shipped in this workspace is proven
//! miss-free by property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod error;
pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod observer;
pub mod policy;
pub mod state;
pub mod time;
pub mod trace;
pub mod traits;
pub mod types;
pub mod workload;

pub use calendar::{Calendar, CalendarEvent};
pub use engine::{DeadlineMode, SimConfig, SimOutcome, Simulation, Step};
pub use error::SimError;
pub use event::{SimEvent, SliceInfo};
pub use jsonl::{JsonlWriter, EVENTS_SCHEMA};
pub use metrics::Metrics;
pub use observer::{Fanout, MetricsCollector, SimObserver, TraceRecorder};
pub use state::{BatteryView, SimState};
pub use traits::{FrequencyGovernor, MaxSpeed, TaskPolicy};
pub use types::TaskRef;
pub use workload::{
    ActualSampler, FixedFraction, FractionTable, PersistentFraction, UniformFraction, WorstCase,
};
