//! Engine-level property tests: precedence, accounting and determinism
//! under the built-in canonical-EDF policy, driven through the stepped
//! [`Simulation`] lifecycle.

use bas_cpu::presets::unit_processor;
use bas_sim::policy::EdfTopo;
use bas_sim::trace::SliceKind;
use bas_sim::traits::MaxSpeed;
use bas_sim::{SimConfig, Simulation, UniformFraction};
use bas_taskgraph::{GeneratorConfig, GraphShape, TaskSetConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_set(seed: u64, graphs: usize, util: f64) -> bas_taskgraph::TaskSet {
    let cfg = TaskSetConfig {
        graphs,
        graph: GeneratorConfig {
            nodes: (2, 10),
            wcet: (5, 60),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.3 },
        },
        utilization: util,
        fmax: 1.0,
        period_quantum: None,
    };
    cfg.generate(&mut StdRng::seed_from_u64(seed)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_respects_precedence_within_every_instance(
        seed in 0u64..5_000,
        graphs in 1usize..4,
        util in 0.3f64..0.9,
    ) {
        let set = random_set(seed, graphs, util);
        let horizon = 1.5 * set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max);
        let mut governor = MaxSpeed;
        let mut policy = EdfTopo;
        let mut sampler = UniformFraction::paper(seed);
        let mut sim = Simulation::new(
            set.clone(),
            SimConfig::new(unit_processor()),
            &mut governor,
            &mut policy,
            &mut sampler,
        )
        .unwrap();
        sim.run_until(horizon).unwrap();
        let out = sim.finish();
        let trace = out.trace.unwrap();
        trace.validate().unwrap();

        // Within each graph, track per-instance completion order: a node may
        // only start once all predecessors have accumulated their full
        // actual demand. We verify the weaker but order-robust property:
        // the FIRST execution slice of a successor never precedes the FIRST
        // slice of its predecessor (per instance window).
        for (gid, pg) in set.iter() {
            let graph = pg.graph();
            let period = pg.period();
            // Bucket slices by instance index.
            let mut firsts: std::collections::HashMap<(u64, usize), f64> =
                std::collections::HashMap::new();
            for s in trace.slices() {
                if let SliceKind::Run { task, .. } = s.kind {
                    if task.graph == gid {
                        // A slice starting exactly at a release boundary
                        // belongs to the NEW instance; float division can
                        // land at 120.999… for start = 121·period, so nudge
                        // by a fraction of a period (far below any slice
                        // length) before flooring.
                        let instance = ((s.start + 1e-6 * period) / period).floor() as u64;
                        firsts
                            .entry((instance, task.node.index()))
                            .or_insert(s.start);
                    }
                }
            }
            for ((instance, node_ix), &start) in &firsts {
                let node = bas_taskgraph::NodeId::from_index(*node_ix);
                for p in graph.predecessors(node) {
                    if let Some(&p_start) = firsts.get(&(*instance, p.index())) {
                        prop_assert!(
                            p_start <= start + 1e-9,
                            "instance {instance} of {gid}: {p} first ran at {p_start}, after {node} at {start}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn accounting_identities_hold(
        seed in 0u64..5_000,
        graphs in 1usize..4,
    ) {
        let set = random_set(seed, graphs, 0.7);
        let horizon = 1.2 * set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max);
        let mut governor = MaxSpeed;
        let mut policy = EdfTopo;
        let mut sampler = UniformFraction::paper(seed);
        let mut sim = Simulation::new(
            set,
            SimConfig::new(unit_processor()),
            &mut governor,
            &mut policy,
            &mut sampler,
        )
        .unwrap();
        sim.run_until(horizon).unwrap();
        let out = sim.finish();
        let m = &out.metrics;
        prop_assert!((m.busy_time + m.idle_time - m.sim_time).abs() < 1e-6);
        let trace = out.trace.unwrap();
        prop_assert!((trace.busy_time() - m.busy_time).abs() < 1e-6);
        prop_assert!((trace.to_load_profile().total_charge() - m.charge).abs() < 1e-6);
        // Completions never exceed releases; released - completed <= graphs.
        prop_assert!(m.instances_completed <= m.instances_released);
    }

    #[test]
    fn executor_is_deterministic(
        seed in 0u64..5_000,
    ) {
        let run = || {
            let set = random_set(seed, 3, 0.7);
            let mut governor = MaxSpeed;
            let mut policy = EdfTopo;
            let mut sampler = UniformFraction::paper(seed);
            let mut sim = Simulation::new(
                set,
                SimConfig::new(unit_processor()),
                &mut governor,
                &mut policy,
                &mut sampler,
            )
            .unwrap();
            sim.run_until(300.0).unwrap();
            sim.finish().metrics
        };
        prop_assert_eq!(run(), run());
    }
}
