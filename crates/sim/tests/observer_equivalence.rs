//! Observer equivalence: the composable observers must reconstruct exactly
//! what the engine's built-ins record.
//!
//! * an externally attached [`TraceRecorder`]/[`MetricsCollector`] pair must
//!   reproduce the outcome's `Trace` and `Metrics` bit-for-bit;
//! * a **trace-off** run streamed through the [`JsonlWriter`] must carry a
//!   slice sequence from which the in-memory `Trace` rebuilds exactly —
//!   O(1)-memory streaming loses nothing;
//! * a tiny battery co-simulation's stream must match the checked-in
//!   `bas-events/v2` golden file byte for byte (schema stability).

use bas_cpu::presets::unit_processor;
use bas_sim::policy::EdfTopo;
use bas_sim::trace::SliceKind;
use bas_sim::{
    JsonlWriter, MaxSpeed, MetricsCollector, SimConfig, SimObserver, SimOutcome, Simulation,
    SliceInfo, TaskRef, TraceRecorder, UniformFraction, WorstCase,
};
use bas_taskgraph::{
    GeneratorConfig, GraphId, GraphShape, NodeId, PeriodicTaskGraph, TaskGraphBuilder, TaskSet,
    TaskSetConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_set(seed: u64, graphs: usize, util: f64) -> TaskSet {
    TaskSetConfig {
        graphs,
        graph: GeneratorConfig {
            nodes: (2, 8),
            wcet: (5, 50),
            shape: GraphShape::Layered { layers: 2, edge_prob: 0.3 },
        },
        utilization: util,
        fmax: 1.0,
        period_quantum: None,
    }
    .generate(&mut StdRng::seed_from_u64(seed))
    .unwrap()
}

/// Run `set` to `horizon`, recording the built-in trace, with the given
/// extra observers attached.
fn run_observed(
    set: TaskSet,
    seed: u64,
    horizon: f64,
    record_trace: bool,
    observers: &mut [&mut dyn bas_sim::SimObserver],
) -> SimOutcome {
    let mut governor = MaxSpeed;
    let mut policy = EdfTopo;
    let mut sampler = UniformFraction::paper(seed);
    let mut cfg = SimConfig::new(unit_processor());
    cfg.record_trace = record_trace;
    let mut sim = Simulation::new(set, cfg, &mut governor, &mut policy, &mut sampler).unwrap();
    for observer in observers.iter_mut() {
        sim.attach(*observer);
    }
    sim.run_until(horizon).unwrap();
    sim.finish()
}

/// Pull a field's raw text out of a flat one-line JSON object.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = if let Some(stripped) = rest.strip_prefix('"') {
        return Some(&stripped[..stripped.find('"')?]);
    } else {
        rest.find([',', '}'])?
    };
    Some(&rest[..end])
}

/// Parse one `"type":"slice"` line back into a [`SliceInfo`].
fn parse_slice(line: &str) -> SliceInfo {
    let pe: usize = field(line, "pe").unwrap().parse().unwrap();
    let start: f64 = field(line, "start").unwrap().parse().unwrap();
    let duration: f64 = field(line, "duration").unwrap().parse().unwrap();
    let current: f64 = field(line, "current").unwrap().parse().unwrap();
    let kind = match field(line, "kind").unwrap() {
        "idle" => SliceKind::Idle,
        "run" => {
            let task = field(line, "task").unwrap();
            let (g, n) = task.split_once('.').unwrap();
            let task = TaskRef::new(
                GraphId::from_index(g.strip_prefix('T').unwrap().parse().unwrap()),
                NodeId::from_index(n.strip_prefix('n').unwrap().parse().unwrap()),
            );
            SliceKind::Run {
                task,
                opp: field(line, "opp").unwrap().parse().unwrap(),
                frequency: field(line, "frequency").unwrap().parse().unwrap(),
            }
        }
        other => panic!("unknown slice kind {other}"),
    };
    SliceInfo { pe, start, duration, current, kind }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// External recorder + collector == the outcome's own trace + metrics,
    /// field for field, bit for bit.
    #[test]
    fn attached_observers_reconstruct_trace_and_metrics_exactly(
        seed in 0u64..3_000,
        graphs in 1usize..4,
        util in 0.3f64..0.9,
    ) {
        let set = random_set(seed, graphs, util);
        let horizon = 1.3 * set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max);
        let mut recorder = TraceRecorder::new();
        let mut collector = MetricsCollector::new(unit_processor().supply().vbat);
        let out = run_observed(
            set,
            seed,
            horizon,
            true,
            &mut [&mut recorder, &mut collector],
        );
        prop_assert_eq!(collector.metrics(), &out.metrics);
        let built_in = out.trace.unwrap();
        prop_assert_eq!(recorder.trace().slices(), built_in.slices());
    }

    /// A trace-off JSONL stream carries the exact slice sequence: rebuilding
    /// the trace from its `slice` lines reproduces the `record_trace = true`
    /// trace, and the run's metrics are untouched by streaming.
    #[test]
    fn jsonl_stream_rebuilds_the_exact_trace_without_recording(
        seed in 0u64..3_000,
        graphs in 1usize..4,
    ) {
        let set = random_set(seed, graphs, 0.7);
        let horizon = 1.3 * set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max);
        let recorded = run_observed(set.clone(), seed, horizon, true, &mut []);

        let mut writer = JsonlWriter::new(Vec::new());
        let streamed = run_observed(set, seed, horizon, false, &mut [&mut writer]);
        prop_assert!(streamed.trace.is_none(), "trace-off run must not buffer");
        prop_assert_eq!(&streamed.metrics, &recorded.metrics);

        let bytes = writer.into_inner().unwrap();
        let stream = String::from_utf8(bytes).unwrap();
        let mut rebuilt = TraceRecorder::new();
        let scratch = bas_sim::SimState::new(TaskSet::new());
        for line in stream.lines() {
            if field(line, "type") == Some("slice") {
                rebuilt.on_slice(&scratch, &parse_slice(line));
            }
        }
        prop_assert_eq!(
            rebuilt.trace().slices(),
            recorded.trace.as_ref().unwrap().slices(),
            "slice-by-slice replay of the stream must equal the in-memory trace"
        );
    }
}

#[test]
fn golden_events_stream_is_byte_stable() {
    // T0: a(2)->b(3) / period 10, T1: c(2) / period 5, worst-case actuals,
    // 9 C ideal cell (dies mid-run) — small enough to eyeball, exercises
    // release/freq/decision/start/progress/complete/battery/slice records
    // and the exhaustion cut.
    let mut b = TaskGraphBuilder::new("T0");
    let a = b.add_node("a", 2);
    let c = b.add_node("b", 3);
    b.add_edge(a, c).unwrap();
    let g0 = PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap();
    let mut b = TaskGraphBuilder::new("T1");
    b.add_node("c", 2);
    let g1 = PeriodicTaskGraph::new(b.build().unwrap(), 5.0).unwrap();
    let mut set = TaskSet::new();
    set.push(g0);
    set.push(g1);

    let mut governor = MaxSpeed;
    let mut policy = EdfTopo;
    let mut sampler = WorstCase;
    let mut battery = bas_battery::IdealModel::new(9.0);
    let mut writer = JsonlWriter::new(Vec::new());
    writer.header("golden", "EDF", 1);
    let mut sim = Simulation::new(
        set,
        SimConfig::new(unit_processor()),
        &mut governor,
        &mut policy,
        &mut sampler,
    )
    .unwrap();
    sim.mount_battery(&mut battery);
    sim.attach(&mut writer);
    sim.run_until(30.0).unwrap();
    drop(sim);

    let produced = String::from_utf8(writer.into_inner().unwrap()).unwrap();
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/events_smoke.jsonl");
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&golden_path, &produced).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(
        produced, golden,
        "the bas-events/v2 stream drifted from {golden_path:?}; if intentional, \
         regenerate with `BLESS_GOLDEN=1 cargo test -p bas-sim --test observer_equivalence`"
    );
}
