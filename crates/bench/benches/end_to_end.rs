//! End-to-end simulation throughput: scheduler + battery co-simulation per
//! simulated second, for each Table-2 scheduler.

use bas_battery::Kibam;
use bas_core::{Experiment, SchedulerSpec};
use bas_cpu::presets::unit_processor;
use bas_taskgraph::{GeneratorConfig, GraphShape, TaskSet, TaskSetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_set() -> TaskSet {
    let cfg = TaskSetConfig {
        graphs: 4,
        graph: GeneratorConfig {
            nodes: (5, 15),
            wcet: (10, 100),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        },
        utilization: 0.7,
        fmax: 1.0,
        period_quantum: None,
    };
    cfg.generate(&mut StdRng::seed_from_u64(5)).unwrap()
}

fn bench_horizon_sims(c: &mut Criterion) {
    let set = test_set();
    let proc = unit_processor();
    let mut group = c.benchmark_group("simulate-500s-horizon");
    for (name, spec) in SchedulerSpec::table2_lineup() {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(
                    Experiment::new(&set)
                        .spec(spec)
                        .processor(&proc)
                        .seed(7)
                        .horizon(500.0)
                        .run()
                        .expect("feasible"),
                )
            })
        });
    }
    group.finish();
}

fn bench_battery_cosim(c: &mut Criterion) {
    let set = test_set();
    let proc = unit_processor();
    c.bench_function("cosim-until-battery-death", |b| {
        b.iter(|| {
            // Small cell so each iteration stays short.
            let mut cell =
                Kibam::new(bas_battery::KibamParams { capacity: 200.0, c: 0.6, k_prime: 1e-3 });
            std::hint::black_box(
                Experiment::new(&set)
                    .spec(SchedulerSpec::bas2())
                    .processor(&proc)
                    .seed(7)
                    .horizon(1e6)
                    .battery(&mut cell)
                    .run()
                    .expect("feasible"),
            )
        })
    });
}

criterion_group!(benches, bench_horizon_sims, bench_battery_cosim);
criterion_main!(benches);
