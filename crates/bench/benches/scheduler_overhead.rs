//! Per-decision cost of the scheduling components.
//!
//! The paper's motivation for heuristics over cost-function optimization is
//! that scheduling decisions must be cheap enough for "a dynamically changing
//! environment" (§1). These benches pin the cost of one governor evaluation,
//! one priority ranking, and one feasibility check on a live mid-simulation
//! state.

use bas_core::estimator::EmaEstimator;
use bas_core::feasibility::{is_feasible, FeasibilityVariant};
use bas_core::priority::{Ltf, Priority, Pubs, RandomPriority};
use bas_dvs::{CcEdf, LaEdf};
use bas_sim::{FrequencyGovernor, SimState, TaskRef};
use bas_taskgraph::{GeneratorConfig, GraphShape, TaskSetConfig};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A released 8-graph state with everything pending (worst case for the
/// algorithms: maximal ready lists and EDF chains).
fn busy_state() -> (SimState, Vec<TaskRef>) {
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = TaskSetConfig {
        graphs: 8,
        graph: GeneratorConfig {
            nodes: (10, 10),
            wcet: (10, 100),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        },
        utilization: 0.7,
        fmax: 1.0,
        period_quantum: None,
    };
    let set = cfg.generate(&mut rng).unwrap();
    let mut state = SimState::new(set);
    for gid in state.set().graph_ids().collect::<Vec<_>>() {
        let actuals: Vec<f64> = state.set()[gid]
            .graph()
            .node_ids()
            .map(|n| state.set()[gid].graph().wcet(n) as f64 * 0.6)
            .collect();
        state.release(gid, actuals);
    }
    state.refresh_edf();
    let mut ready = Vec::new();
    state.ready_tasks(&mut ready);
    (state, ready)
}

fn bench_governors(c: &mut Criterion) {
    let (state, _) = busy_state();
    c.bench_function("governor/ccEDF", |b| {
        let mut g = CcEdf;
        b.iter(|| std::hint::black_box(g.frequency(&state)))
    });
    c.bench_function("governor/laEDF", |b| {
        let mut g = LaEdf::with_fmax(1.0);
        b.iter(|| std::hint::black_box(g.frequency(&state)))
    });
}

fn bench_priorities(c: &mut Criterion) {
    let (state, ready) = busy_state();
    let mut out = Vec::new();
    c.bench_function("priority/random", |b| {
        let mut p = RandomPriority::new(7);
        b.iter(|| {
            p.rank(&state, &ready, 0.7, &mut out);
            std::hint::black_box(out.len())
        })
    });
    c.bench_function("priority/LTF", |b| {
        let mut p = Ltf;
        b.iter(|| {
            p.rank(&state, &ready, 0.7, &mut out);
            std::hint::black_box(out.len())
        })
    });
    c.bench_function("priority/pUBS", |b| {
        let mut p = Pubs::new(EmaEstimator::paper());
        b.iter(|| {
            p.rank(&state, &ready, 0.7, &mut out);
            std::hint::black_box(out.len())
        })
    });
}

fn bench_feasibility(c: &mut Criterion) {
    let (state, ready) = busy_state();
    // A candidate from the last graph in EDF order: maximal number of checks.
    let candidate = *ready
        .iter()
        .find(|t| Some(t.graph) == state.edf_order().last().copied())
        .expect("last graph has a ready node");
    c.bench_function("feasibility/cumulative-worst-position", |b| {
        b.iter(|| {
            std::hint::black_box(is_feasible(
                &state,
                candidate,
                0.7,
                FeasibilityVariant::Cumulative,
            ))
        })
    });
}

fn bench_ready_list(c: &mut Criterion) {
    let (state, _) = busy_state();
    c.bench_function("state/ready-tasks", |b| {
        b.iter_batched(
            Vec::new,
            |mut buf| {
                state.ready_tasks(&mut buf);
                std::hint::black_box(buf.len())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_governors, bench_priorities, bench_feasibility, bench_ready_list);
criterion_main!(benches);
