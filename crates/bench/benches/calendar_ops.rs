//! Microbenchmarks of the event calendar — the engine's O(log n)
//! next-event index (`bas_sim::Calendar`).
//!
//! Three access patterns, matching how the stepped engine actually drives
//! the calendar:
//!
//! * `calendar/rekey-peek` — the raw heap cycle: re-key one entry
//!   (`O(log n)` sift) then peek the minimum (`O(1)`). The unit cost every
//!   other number decomposes into.
//! * `calendar/release-heavy` — many graphs re-keying their next release
//!   in period order with a `next_event` dispatch after each, the pattern
//!   of a release-dominated workload (sweep/mpsoc scenarios).
//! * `calendar/completion-heavy` — per-PE completion plans re-keyed every
//!   step and cleared at the step boundary (`clear_step_entries`), the
//!   pattern of the wide-DAG scenarios where releases are rare and every
//!   step is plan → complete → replan.
//!
//! Sizes are chosen around the repo's real scales: 8 graphs × 4 PEs is the
//! bench suite's sweep shape, 1024 graphs stresses the log factor.

use bas_sim::Calendar;
use bas_taskgraph::GraphId;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Deterministic 64-bit mixer (splitmix64) — cheap pseudo-random event
/// times without an RNG dependency in the hot loop.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn rekey_peek(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar");
    for &graphs in &[8usize, 64, 1024] {
        let mut cal = Calendar::new(graphs, 4);
        for g in 0..graphs {
            cal.set_release(GraphId::from_index(g), mix(g as u64) as f64 / 1e15);
        }
        let mut tick = 0u64;
        let n = graphs;
        group.bench_function(format!("rekey-peek/{graphs}"), |b| {
            b.iter(|| {
                tick = tick.wrapping_add(1);
                let g = (tick as usize * 7) % n;
                // A fresh key each iteration so the sift distance varies.
                cal.set_release(GraphId::from_index(g), mix(tick) as f64 / 1e15);
                black_box(cal.next_release())
            })
        });
    }
    group.finish();
}

fn release_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar");
    for &graphs in &[8usize, 64, 1024] {
        let n = graphs;
        group.bench_function(format!("release-heavy/{graphs}"), |b| {
            b.iter(|| {
                let mut cal = Calendar::new(n, 4);
                // Every graph gets a period; walk 4 hyperperiod-ish rounds
                // of releases in time order, dispatching after each re-key —
                // the engine's process_releases + next_event cadence.
                for round in 0..4u64 {
                    for g in 0..n {
                        let period = 1.0 + (g % 7) as f64;
                        cal.set_release(GraphId::from_index(g), (round + 1) as f64 * period);
                        black_box(cal.next_event(round as f64));
                    }
                }
                black_box(cal.next_release())
            })
        });
    }
    group.finish();
}

fn completion_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar");
    for &pes in &[1usize, 4, 16] {
        let mut cal = Calendar::new(8, pes);
        for g in 0..8 {
            cal.set_release(GraphId::from_index(g), 1e9 + g as f64);
        }
        let mut tick = 0u64;
        let n = pes;
        group.bench_function(format!("completion-heavy/{pes}"), |b| {
            b.iter(|| {
                tick = tick.wrapping_add(1);
                // One engine step: plan a completion and a battery leg per
                // PE, take the earliest, then clear at the step boundary.
                for pe in 0..n {
                    cal.set_completion(pe, mix(tick ^ pe as u64) as f64 / 1e15);
                    cal.set_leg(pe, mix(tick.wrapping_mul(31) ^ pe as u64) as f64 / 1e15);
                }
                let dt = cal.next_completion().min(cal.next_leg());
                cal.clear_step_entries();
                black_box(dt)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, rekey_peek, release_heavy, completion_heavy);
criterion_main!(benches);
