//! Raw stepping throughput of the simulation engine on a fixed workload —
//! the repo's first perf trajectory for the platform-refactored core.
//!
//! Two variants pin the cost of the multi-PE generalization:
//!
//! * `engine-step/1pe` — the paper's uniprocessor, which the refactor
//!   promises to keep bit-identical *and* regression-free in wall clock;
//! * `engine-step/4pe` — the same workload spread over four elements
//!   (per-PE decisions, merged-segment battery stepping), measuring the
//!   marginal cost of each extra lane.
//!
//! Both benches drive `Simulation` directly (no sweep layer) over a fixed
//! 200-simulated-second horizon with a mounted battery, the configuration
//! every experiment in the repo ultimately bottoms out in.

use bas_battery::IdealModel;
use bas_core::SchedulerSpec;
use bas_cpu::presets::unit_processor;
use bas_cpu::Platform;
use bas_sim::{SimConfig, Simulation};
use bas_taskgraph::{GeneratorConfig, GraphShape, Mapping, TaskSet, TaskSetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixed_workload() -> TaskSet {
    TaskSetConfig {
        graphs: 6,
        graph: GeneratorConfig {
            nodes: (4, 10),
            wcet: (10, 80),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        },
        utilization: 0.7,
        fmax: 1.0,
        period_quantum: None,
    }
    .generate(&mut StdRng::seed_from_u64(11))
    .unwrap()
}

fn step_horizon(set: &TaskSet, pes: usize) -> f64 {
    let spec = SchedulerSpec::bas2();
    let platform = Platform::uniform(unit_processor(), pes);
    let mapping = if pes == 1 { Mapping::single_pe(set) } else { Mapping::list_schedule(set, pes) };
    let mut governors = spec.build_governor_bank(&platform);
    let mut policies = spec.build_policy_bank(7, pes);
    let mut sampler = bas_sim::UniformFraction::paper(7);
    let mut cfg = SimConfig::with_platform(platform);
    cfg.record_trace = false;
    let mut battery = IdealModel::new(1e9);
    let policy_refs: Vec<&mut dyn bas_sim::TaskPolicy> =
        policies.iter_mut().map(|p| &mut **p as &mut dyn bas_sim::TaskPolicy).collect();
    let mut sim = Simulation::with_platform(
        set.clone(),
        mapping,
        cfg,
        governors.as_muts(),
        policy_refs,
        &mut sampler,
    )
    .expect("feasible");
    sim.mount_battery(&mut battery);
    sim.run_until(200.0).expect("miss-free");
    sim.finish().metrics.charge
}

fn bench_stepping(c: &mut Criterion) {
    let set = fixed_workload();
    let mut group = c.benchmark_group("engine-step");
    group.bench_function("1pe", |b| b.iter(|| std::hint::black_box(step_horizon(&set, 1))));
    group.bench_function("4pe", |b| b.iter(|| std::hint::black_box(step_horizon(&set, 4))));
    group.finish();
}

criterion_group!(benches, bench_stepping);
criterion_main!(benches);
