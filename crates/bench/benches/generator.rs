//! Task-graph and task-set generation throughput — the sweeps generate
//! hundreds of sets, so this must stay negligible next to simulation time.

use bas_taskgraph::{GeneratorConfig, GraphShape, TaskSetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_graph_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate-graph-15-nodes");
    for (name, shape) in [
        ("fan-in-fan-out", GraphShape::FanInFanOut { max_out: 3, max_in: 3 }),
        ("layered-sparse", GraphShape::Layered { layers: 3, edge_prob: 0.2 }),
        ("independent", GraphShape::Independent),
    ] {
        group.bench_function(name, |b| {
            let cfg = GeneratorConfig { nodes: (15, 15), wcet: (10, 100), shape };
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| std::hint::black_box(cfg.generate("g", &mut rng)))
        });
    }
    group.finish();
}

fn bench_task_set(c: &mut Criterion) {
    c.bench_function("generate-task-set-8-graphs", |b| {
        let cfg = TaskSetConfig {
            graphs: 8,
            graph: GeneratorConfig {
                nodes: (5, 15),
                wcet: (10, 100),
                shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
            },
            utilization: 0.7,
            fmax: 1.0,
            period_quantum: None,
        };
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| std::hint::black_box(cfg.generate(&mut rng).unwrap()))
    });
}

fn bench_algorithms(c: &mut Criterion) {
    let cfg = GeneratorConfig {
        nodes: (15, 15),
        wcet: (10, 100),
        shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
    };
    let g = cfg.generate("g", &mut StdRng::seed_from_u64(3));
    c.bench_function("algo/critical-path-15", |b| {
        b.iter(|| std::hint::black_box(g.critical_path()))
    });
    c.bench_function("algo/count-linear-extensions-15", |b| {
        b.iter(|| std::hint::black_box(bas_taskgraph::algo::count_linear_extensions(&g)))
    });
}

criterion_group!(benches, bench_graph_shapes, bench_task_set, bench_algorithms);
criterion_main!(benches);
