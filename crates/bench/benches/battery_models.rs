//! Step throughput of the battery models.
//!
//! Co-simulation calls `step` once per trace slice; Table-2-scale runs take
//! hundreds of thousands of steps, so per-step cost is what bounds sweep
//! sizes.

use bas_battery::{BatteryModel, DiffusionModel, IdealModel, Kibam, PeukertModel, StochasticKibam};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("battery-step");
    let pulse = [(1.2, 0.05), (0.3, 0.05)];

    macro_rules! bench_model {
        ($name:literal, $make:expr) => {
            group.bench_function($name, |b| {
                let mut cell = $make;
                b.iter(|| {
                    for &(i, dt) in &pulse {
                        if cell.step(i, dt).is_exhausted() {
                            cell.reset();
                        }
                    }
                    std::hint::black_box(cell.charge_delivered())
                })
            });
        };
    }
    bench_model!("kibam-closed-form", Kibam::paper_cell());
    bench_model!("diffusion-10-terms", DiffusionModel::paper_cell());
    bench_model!("stochastic-kibam", StochasticKibam::paper_cell(3));
    bench_model!("peukert", PeukertModel::paper_cell());
    bench_model!("ideal", IdealModel::paper_cell());
    group.finish();
}

fn bench_death_detection(c: &mut Criterion) {
    // The expensive path: a step that kills the cell (bisection / scan).
    c.bench_function("battery-step/kibam-death-bisection", |b| {
        b.iter(|| {
            let mut cell = Kibam::paper_cell();
            std::hint::black_box(cell.step(10.0, 10_000.0))
        })
    });
    c.bench_function("battery-step/diffusion-death-scan", |b| {
        b.iter(|| {
            let mut cell = DiffusionModel::paper_cell();
            std::hint::black_box(cell.step(10.0, 10_000.0))
        })
    });
}

criterion_group!(benches, bench_steps, bench_death_detection);
criterion_main!(benches);
