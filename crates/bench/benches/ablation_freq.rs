//! Simulation-speed cost of the frequency-realization policies and of OPP
//! table density.
//!
//! Interpolation emits up to two trace slices per execution slice (two legs);
//! round-up emits one; the dense ideal-DVS grid stresses the OPP bracketing.
//! This bench shows the executor overhead of each choice — the *energy*
//! consequences are measured by the `bas ablation` preset.

use bas_core::{Experiment, SamplerKind, SchedulerSpec};
use bas_cpu::presets::{dense_dvs_processor, unit_processor};
use bas_cpu::FreqPolicy;
use bas_taskgraph::{GeneratorConfig, GraphShape, TaskSet, TaskSetConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_set() -> TaskSet {
    let cfg = TaskSetConfig {
        graphs: 4,
        graph: GeneratorConfig {
            nodes: (5, 15),
            wcet: (10, 100),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        },
        utilization: 0.7,
        fmax: 1.0,
        period_quantum: None,
    };
    cfg.generate(&mut StdRng::seed_from_u64(9)).unwrap()
}

fn bench_freq_policies(c: &mut Criterion) {
    let set = test_set();
    let mut group = c.benchmark_group("executor-300s");
    for (name, freq) in
        [("3-opp/interpolate", FreqPolicy::Interpolate), ("3-opp/round-up", FreqPolicy::RoundUp)]
    {
        let proc = unit_processor();
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(
                    Experiment::new(&set)
                        .spec(SchedulerSpec::bas2())
                        .processor(&proc)
                        .seed(7)
                        .horizon(300.0)
                        .freq_policy(freq)
                        .sampler(SamplerKind::Persistent)
                        .run()
                        .expect("feasible"),
                )
            })
        });
    }
    let dense = dense_dvs_processor(20, 0.05);
    group.bench_function("dense-20-opp/interpolate", |b| {
        b.iter(|| {
            std::hint::black_box(
                Experiment::new(&set)
                    .spec(SchedulerSpec::bas2())
                    .processor(&dense)
                    .seed(7)
                    .horizon(300.0)
                    .freq_policy(FreqPolicy::Interpolate)
                    .sampler(SamplerKind::Persistent)
                    .run()
                    .expect("feasible"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_freq_policies);
criterion_main!(benches);
