//! Deprecated home of the summary statistics.
//!
//! [`Summary`] moved to [`bas_core::stats`] when the `Sweep` layer started
//! returning per-spec summaries; this module remains as a re-export so
//! `bas_bench::stats::Summary` keeps compiling.

pub use bas_core::stats::Summary;
