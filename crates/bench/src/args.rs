//! Minimal `--key value` flag parsing for the experiment binaries.
//!
//! No CLI crate is in the approved offline dependency set, and the binaries
//! only need a handful of numeric flags with defaults.

use std::collections::BTreeMap;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse `--key value` pairs from `std::env::args` (skipping the binary
    /// name and a possible `--` separator cargo inserts).
    ///
    /// # Panics
    /// Panics with a usage message on malformed input (a `--key` without a
    /// value, or a bare token).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn from_args(iter: impl IntoIterator<Item = String>) -> Self {
        let mut flags = BTreeMap::new();
        let mut it = iter.into_iter().peekable();
        while let Some(tok) = it.next() {
            if tok == "--" {
                continue;
            }
            let key =
                tok.strip_prefix("--").unwrap_or_else(|| panic!("expected --flag, got {tok:?}"));
            let val = it.next().unwrap_or_else(|| panic!("flag --{key} needs a value"));
            flags.insert(key.to_string(), val);
        }
        Args { flags }
    }

    /// A u64 flag with default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.flags
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects an integer, got {v:?}")))
            .unwrap_or(default)
    }

    /// A usize flag with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.u64(key, default as u64) as usize
    }

    /// An f64 flag with default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.flags
            .get(key)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}")))
            .unwrap_or(default)
    }

    /// A string flag with default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// A boolean flag (`--key true|false`), default given.
    pub fn bool(&self, key: &str, default: bool) -> bool {
        self.flags.get(key).map(|v| matches!(v.as_str(), "true" | "1" | "yes")).unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = args(&["--trials", "50", "--seed", "7", "--out", "x.csv"]);
        assert_eq!(a.u64("trials", 1), 50);
        assert_eq!(a.u64("seed", 0), 7);
        assert_eq!(a.str("out", "-"), "x.csv");
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = args(&[]);
        assert_eq!(a.u64("trials", 100), 100);
        assert_eq!(a.f64("util", 0.7), 0.7);
        assert!(!a.bool("verbose", false));
    }

    #[test]
    fn double_dash_separator_is_skipped() {
        let a = args(&["--", "--n", "3"]);
        assert_eq!(a.u64("n", 0), 3);
    }

    #[test]
    fn bool_parsing() {
        assert!(args(&["--x", "true"]).bool("x", false));
        assert!(args(&["--x", "1"]).bool("x", false));
        assert!(!args(&["--x", "no"]).bool("x", true));
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn missing_value_panics() {
        args(&["--trials"]);
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn non_numeric_panics() {
        args(&["--trials", "many"]).u64("trials", 0);
    }
}
