//! Table 2 — charge delivered (mAh) and battery lifetime (min) for the five
//! scheduling schemes, averaged over many random task-graph sets at 70 %
//! utilization, plus the §6 headline improvement percentages.
//!
//! Paper reference values:
//!
//! ```text
//! Scheme  DVS    Priority  Ready list      Charge(mAh)  Life(min)
//! EDF     none   random    most imminent   1567         74
//! ccEDF   ccEDF  random    most imminent   1608         101
//! laEDF   laEDF  random    most imminent   1607         120
//! BAS-1   laEDF  pUBS      most imminent   1723         137
//! BAS-2   laEDF  pUBS      all released    1757         148
//! ```
//!
//! Platform: the paper's 1 GHz / 3-OPP processor behind a 90 % DC-DC
//! converter and the 1.2 V, 2000 mAh (max) AAA NiMH cell, simulated with the
//! stochastic KiBaM (`--battery kibam|stochastic|diffusion` to switch).
//!
//! Usage: `cargo run -p bas-bench --release --bin table2 -- [--trials 100]
//! [--seed 1] [--graphs 4] [--util 0.7] [--threads 0] [--battery stochastic]`

use bas_battery::{BatteryModel, DiffusionModel, Kibam, StochasticKibam};
use bas_bench::workloads::paper_scale_config;
use bas_bench::{parallel_map, Args, Summary, TextTable};
use bas_core::runner::{simulate_with_battery_custom, SamplerKind, SchedulerSpec};
use bas_cpu::presets::paper_processor;
use bas_cpu::FreqPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

const PAPER: &[(&str, f64, f64)] = &[
    ("EDF", 1567.0, 74.0),
    ("ccEDF", 1608.0, 101.0),
    ("laEDF", 1607.0, 120.0),
    ("BAS-1", 1723.0, 137.0),
    ("BAS-2", 1757.0, 148.0),
];

fn make_battery(kind: &str, seed: u64) -> Box<dyn BatteryModel> {
    match kind {
        "stochastic" => Box::new(StochasticKibam::paper_cell(seed)),
        "kibam" => Box::new(Kibam::paper_cell()),
        "diffusion" => Box::new(DiffusionModel::paper_cell()),
        other => panic!("--battery must be stochastic|kibam|diffusion, got {other}"),
    }
}

fn main() {
    let args = Args::parse();
    let trials = args.usize("trials", 100);
    let base_seed = args.u64("seed", 1);
    let graphs = args.usize("graphs", 4);
    let util = args.f64("util", 0.7);
    let threads = args.usize("threads", 0);
    let battery_kind = args.str("battery", "stochastic");
    // Cap on simulated lifetime; runs that outlive it are censored (reported
    // at the cap) — with the s³ current law the DVS schemes stretch lifetime
    // further than the paper's calibration did (see EXPERIMENTS.md).
    let max_time = args.f64("max-time", 24.0 * 3600.0);
    // The paper's reported average currents are only consistent with the
    // processor sitting on one of the three discrete OPPs (round-up); the
    // optimal two-point interpolation of §2/[4] is available with
    // `--freq interp`. EXPERIMENTS.md quantifies the difference.
    let freq = match args.str("freq", "roundup").as_str() {
        "roundup" => FreqPolicy::RoundUp,
        "interp" => FreqPolicy::Interpolate,
        other => panic!("--freq must be roundup|interp, got {other}"),
    };
    // Per-task persistent actual fractions by default: the paper's
    // history-based Xk estimation presumes cross-instance predictability
    // (EXPERIMENTS.md, "actual-computation model").
    let sampler = match args.str("actuals", "persistent").as_str() {
        "persistent" => SamplerKind::Persistent,
        "iid" => SamplerKind::IidUniform,
        other => panic!("--actuals must be persistent|iid, got {other}"),
    };

    println!("Table 2 reproduction — battery lifetime per scheduling scheme");
    println!(
        "trials: {trials}, {graphs} graphs/set, utilization {util}, battery {battery_kind}, base seed {base_seed}"
    );
    println!("cell: 1.2 V AAA NiMH, 2000 mAh max capacity; processor: 1 GHz 3-OPP, ~1.8 A at fmax\n");

    // Paper lineup + two supplementary rows pairing pUBS with ccEDF: at the
    // paper's 70 % utilization laEDF is already pinned at the lowest OPP
    // (nothing for ordering to win), so the ordering effect is demonstrated
    // on the governor that retains frequency headroom. At `--util 0.9` the
    // laEDF-based BAS rows separate as in the paper (see EXPERIMENTS.md).
    use bas_core::runner::{GovernorKind, PriorityKind, ScopeKind};
    let mut lineup: Vec<(&str, SchedulerSpec)> = SchedulerSpec::table2_lineup().to_vec();
    lineup.push((
        "BAS-1cc",
        SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::MostImminent,
        },
    ));
    lineup.push((
        "BAS-2cc",
        SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        },
    ));
    // results[scheme][trial] = (mAh, minutes)
    let per_trial = parallel_map(trials, threads, |trial| {
        let seed = base_seed
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(trial as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let set = paper_scale_config(graphs, util)
            .generate(&mut rng)
            .expect("valid config");
        let processor = paper_processor();
        lineup
            .iter()
            .map(|(name, spec)| {
                let mut battery = make_battery(&battery_kind, seed ^ 0xba77_e4ee);
                let out = simulate_with_battery_custom(
                    &set,
                    spec,
                    &processor,
                    battery.as_mut(),
                    seed,
                    max_time,
                    freq,
                    sampler,
                )
                .unwrap_or_else(|e| panic!("{name} trial {trial}: {e}"));
                assert_eq!(out.metrics.deadline_misses, 0, "{name} missed a deadline");
                let report = out.battery.expect("battery report");
                if !report.died {
                    eprintln!(
                        "warning: {name} trial {trial} censored at {:.0} min",
                        report.lifetime_minutes()
                    );
                }
                (report.delivered_mah(), report.lifetime_minutes())
            })
            .collect::<Vec<(f64, f64)>>()
    });

    let mut table = TextTable::new(&[
        "Scheme",
        "DVS Algo.",
        "Priority",
        "Ready list",
        "Charge (mAh)",
        "Life (min)",
        "paper (mAh/min)",
    ]);
    let meta = [
        ("EDF", "None", "Random", "most imminent"),
        ("ccEDF", "ccEDF", "Random", "most imminent"),
        ("laEDF", "laEDF", "Random", "most imminent"),
        ("BAS-1", "laEDF", "pUBS", "most imminent"),
        ("BAS-2", "laEDF", "pUBS", "all released"),
        ("BAS-1cc", "ccEDF", "pUBS", "most imminent"),
        ("BAS-2cc", "ccEDF", "pUBS", "all released"),
    ];
    let mut lifetimes: Vec<Summary> = Vec::new();
    for (i, (name, _)) in lineup.iter().enumerate() {
        let mah: Vec<f64> = per_trial.iter().map(|t| t[i].0).collect();
        let min: Vec<f64> = per_trial.iter().map(|t| t[i].1).collect();
        let mah_s = Summary::of(&mah);
        let min_s = Summary::of(&min);
        lifetimes.push(min_s);
        let (_, dvs, prio, ready) = meta[i];
        let paper_col = if i < PAPER.len() {
            let (pname, pmah, pmin) = PAPER[i];
            assert_eq!(*name, pname);
            format!("{pmah:.0}/{pmin:.0}")
        } else {
            "—".to_string()
        };
        table.row(&[
            name.to_string(),
            dvs.to_string(),
            prio.to_string(),
            ready.to_string(),
            format!("{:.0} ± {:.0}", mah_s.mean, mah_s.std),
            format!("{:.0} ± {:.0}", min_s.mean, min_s.std),
            paper_col,
        ]);
    }
    println!("{}", table.render());

    // §6 headline numbers: improvements in battery lifetime.
    let life = |i: usize| lifetimes[i].mean;
    let pct = |a: f64, b: f64| (a / b - 1.0) * 100.0;
    println!("battery-lifetime improvements (mean):");
    println!(
        "  BAS-2 vs laEDF : {:+.1}%   (paper: up to +23.3%)",
        pct(life(4), life(2))
    );
    println!(
        "  BAS-2 vs ccEDF : {:+.1}%   (paper: up to +47%)",
        pct(life(4), life(1))
    );
    println!(
        "  BAS-2 vs no-DVS: {:+.1}%   (paper: up to +100%)",
        pct(life(4), life(0))
    );
    // Per-trial maxima — the paper's "up to" phrasing.
    let mut max_vs_la = f64::MIN;
    let mut max_vs_cc = f64::MIN;
    let mut max_vs_edf = f64::MIN;
    for t in &per_trial {
        max_vs_la = max_vs_la.max(pct(t[4].1, t[2].1));
        max_vs_cc = max_vs_cc.max(pct(t[4].1, t[1].1));
        max_vs_edf = max_vs_edf.max(pct(t[4].1, t[0].1));
    }
    println!("per-set maxima ('up to'):");
    println!("  BAS-2 vs laEDF : {max_vs_la:+.1}%");
    println!("  BAS-2 vs ccEDF : {max_vs_cc:+.1}%");
    println!("  BAS-2 vs no-DVS: {max_vs_edf:+.1}%");
    println!("ordering effect at constant governor (ccEDF):");
    println!(
        "  BAS-1cc vs ccEDF: {:+.1}%   BAS-2cc vs ccEDF: {:+.1}%   (BAS-2cc > BAS-1cc expected)",
        pct(life(5), life(1)),
        pct(life(6), life(1))
    );
}
