//! Figure 5 — canonical EDF ordering vs pUBS-based ordering with the
//! feasibility check, on the paper's worked 3-graph example.
//!
//! Task set: T1 (one task, wc 5, D = 20), T2 (one task, wc 5, D = 50),
//! T3 (three tasks, wc 5 each, D = 100); everything released at t = 0, all
//! tasks take their WCET, so U = 0.5 and `fref = 0.5 · fmax` throughout.
//! The paper assumes the pUBS priority ranks T3's tasks ahead of T2's ahead
//! of T1's — the trace then interleaves T3/T2 work ahead of later T1
//! instances *without* missing any deadline or ever exceeding `fref`.
//!
//! Usage: `cargo run -p bas-bench --release --bin fig5_trace -- [--horizon 100]`

use bas_bench::workloads::fig5_set;
use bas_bench::Args;
use bas_core::policy::BasPolicy;
use bas_core::priority::Priority;
use bas_cpu::presets::unit_processor;
use bas_dvs::CcEdf;
use bas_sim::policy::EdfTopo;
use bas_sim::trace::SliceKind;
use bas_sim::{Executor, SimConfig, SimState, TaskRef, WorstCase};

/// The paper's assumed priority for the example: "tasks from taskgraph3 >
/// taskgraph2 > taskgraph1 according to the pUBS priority function".
struct PaperAssumedOrder;

impl Priority for PaperAssumedOrder {
    fn name(&self) -> &'static str {
        "paper-assumed (T3 > T2 > T1)"
    }

    fn rank(
        &mut self,
        _state: &SimState,
        candidates: &[TaskRef],
        _fref_hz: f64,
        out: &mut Vec<TaskRef>,
    ) {
        out.clear();
        out.extend_from_slice(candidates);
        // Higher graph index first; node order within a graph preserved.
        out.sort_by(|a, b| b.graph.cmp(&a.graph).then(a.node.cmp(&b.node)));
    }
}

fn main() {
    let args = Args::parse();
    let horizon = args.f64("horizon", 100.0);
    println!("Figure 5 reproduction — canonical EDF vs pUBS ordering + feasibility check");
    println!("T1(wc 5, D 20), T2(wc 5, D 50), T3(3×5, D 100); all tasks at WCET; fref = 0.5\n");

    // (a) canonical EDF ordering.
    let mut governor = CcEdf;
    let mut policy = EdfTopo;
    let mut sampler = WorstCase;
    let mut ex = Executor::new(
        fig5_set(),
        SimConfig::new(unit_processor()),
        &mut governor,
        &mut policy,
        &mut sampler,
    )
    .expect("fig5 set is feasible");
    let a = ex.run_for(horizon).expect("no deadline misses");
    println!("(a) Trace using canonical EDF ordering:");
    println!("{}", a.trace.as_ref().unwrap().render());

    // (b) pUBS-style ordering over all released graphs with the feasibility
    // check (the paper's assumed T3 > T2 > T1 ranking).
    let mut governor = CcEdf;
    let mut policy = BasPolicy::all_released(PaperAssumedOrder);
    let mut sampler = WorstCase;
    let mut ex = Executor::new(
        fig5_set(),
        SimConfig::new(unit_processor()),
        &mut governor,
        &mut policy,
        &mut sampler,
    )
    .expect("fig5 set is feasible");
    let b = ex.run_for(horizon).expect("no deadline misses");
    println!("(b) Trace using pUBS-based ordering with feasibility check:");
    println!("{}", b.trace.as_ref().unwrap().render());

    // Checks the paper's example asserts.
    for (label, out) in [("canonical EDF", &a), ("pUBS+feasibility", &b)] {
        assert_eq!(out.metrics.deadline_misses, 0, "{label} missed a deadline");
        let max_f = out
            .trace
            .as_ref()
            .unwrap()
            .slices()
            .iter()
            .filter_map(|s| match s.kind {
                SliceKind::Run { frequency, .. } => Some(frequency),
                SliceKind::Idle => None,
            })
            .fold(0.0, f64::max);
        println!("{label}: deadline misses = 0, max frequency used = {max_f} (fref = 0.5)");
        assert!(max_f <= 0.5 + 1e-9, "{label} exceeded fref");
    }
    let order_b = b.trace.as_ref().unwrap().execution_order();
    println!("\n(b) first executions in order: {:?}", order_b);
    println!("note how T3/T2 tasks run ahead of later T1 work wherever the feasibility");
    println!("check allows it, without ever forcing a frequency above fref — the");
    println!("methodology's guarantee (§4.2).");
    // The out-of-order property: in (b) some T3 or T2 task must run before
    // the *second* instance of T1 completes its work window.
    let first_t3_start = b
        .trace
        .as_ref()
        .unwrap()
        .slices()
        .iter()
        .find_map(|s| match s.kind {
            SliceKind::Run { task, .. } if task.graph.index() == 2 => Some(s.start),
            _ => None,
        })
        .expect("T3 must run");
    assert!(
        first_t3_start < 20.0,
        "pUBS ordering should pull T3 work ahead of T1's second instance (got {first_t3_start})"
    );
}
