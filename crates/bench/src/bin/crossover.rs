//! Utilization sweep — *where the battery-aware gains appear*.
//!
//! The reproduction's most consequential finding (EXPERIMENTS.md): on the
//! paper's 3-OPP grid, how much pUBS ordering helps depends on whether the
//! governor has frequency headroom above the lowest operating point. This
//! binary sweeps utilization and prints the lifetime of each scheme, showing
//!
//! * the no-DVS baseline degrading with load,
//! * laEDF pinned at the frequency floor until high utilization (so
//!   BAS-1/BAS-2 ≈ laEDF there),
//! * the BAS-over-governor gap opening as the operating point lifts off the
//!   floor (ccEDF pairs: visible across the sweep; laEDF pairs: at U ≳ 0.85).
//!
//! Usage: `cargo run -p bas-bench --release --bin crossover -- [--trials 6]`

use bas_battery::StochasticKibam;
use bas_bench::workloads::paper_scale_config;
use bas_bench::{Args, TextTable};
use bas_core::{SamplerKind, SchedulerSpec, Sweep};
use bas_cpu::presets::paper_processor;
use bas_cpu::FreqPolicy;

fn main() {
    let args = Args::parse();
    let trials = args.usize("trials", 6);
    let base_seed = args.u64("seed", 1);
    let threads = args.usize("threads", 0);

    let schemes: Vec<(&str, SchedulerSpec)> = vec![
        ("EDF", SchedulerSpec::edf()),
        ("ccEDF", SchedulerSpec::cc_edf()),
        ("BAS-2cc", SchedulerSpec::bas2cc()),
        ("laEDF", SchedulerSpec::la_edf()),
        ("BAS-2", SchedulerSpec::bas2()),
    ];

    println!("Utilization sweep — battery lifetime (min), {trials} trials per cell\n");
    let mut table = TextTable::new(&[
        "U",
        "EDF",
        "ccEDF",
        "BAS-2cc",
        "laEDF",
        "BAS-2 (laEDF)",
        "BAS-2cc vs ccEDF",
        "BAS-2 vs laEDF",
    ]);
    let processor = paper_processor();
    for util in [0.5, 0.6, 0.7, 0.8, 0.9] {
        // One sweep per utilization point; shift the base seed so points use
        // unrelated trial streams.
        let report = Sweep::over_seeds(base_seed.wrapping_add((util * 1000.0) as u64), trials)
            .specs(schemes.iter().map(|(n, s)| (*n, *s)))
            .workload(paper_scale_config(4, util))
            .processor(&processor)
            .horizon(86_400.0)
            .threads(threads)
            .freq_policy(FreqPolicy::RoundUp)
            .sampler(SamplerKind::Persistent)
            .battery(|seed| Box::new(StochasticKibam::paper_cell(seed ^ 5)))
            .run()
            .unwrap_or_else(|e| panic!("U={util}: {e}"));
        let mean =
            |label: &str| report.spec(label).unwrap().lifetime_min.expect("battery sweep").mean;
        table.row(&[
            format!("{util:.1}"),
            format!("{:.0}", mean("EDF")),
            format!("{:.0}", mean("ccEDF")),
            format!("{:.0}", mean("BAS-2cc")),
            format!("{:.0}", mean("laEDF")),
            format!("{:.0}", mean("BAS-2")),
            format!("{:+.1}%", (mean("BAS-2cc") / mean("ccEDF") - 1.0) * 100.0),
            format!("{:+.1}%", (mean("BAS-2") / mean("laEDF") - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("reading: the last two columns isolate the pUBS-ordering gain at constant");
    println!("governor. The gain needs BOTH frequency headroom above the lowest OPP");
    println!("(absent at low load, where the governor is floor-pinned) AND slack left");
    println!("to recover (absent near full load) — so it peaks at mid-high utilization,");
    println!("~0.7 for ccEDF pairs. laEDF defers so aggressively that it stays floor-");
    println!("pinned until U ≳ 0.8.");
}
