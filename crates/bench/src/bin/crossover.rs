//! Utilization sweep — *where the battery-aware gains appear*.
//!
//! The reproduction's most consequential finding (EXPERIMENTS.md): on the
//! paper's 3-OPP grid, how much pUBS ordering helps depends on whether the
//! governor has frequency headroom above the lowest operating point. This
//! binary sweeps utilization and prints the lifetime of each scheme, showing
//!
//! * the no-DVS baseline degrading with load,
//! * laEDF pinned at the frequency floor until high utilization (so
//!   BAS-1/BAS-2 ≈ laEDF there),
//! * the BAS-over-governor gap opening as the operating point lifts off the
//!   floor (ccEDF pairs: visible across the sweep; laEDF pairs: at U ≳ 0.85).
//!
//! Usage: `cargo run -p bas-bench --release --bin crossover -- [--trials 6]`

use bas_battery::StochasticKibam;
use bas_bench::workloads::paper_scale_config;
use bas_bench::{parallel_map, Args, Summary, TextTable};
use bas_core::runner::{
    simulate_with_battery_custom, GovernorKind, PriorityKind, SamplerKind, SchedulerSpec,
    ScopeKind,
};
use bas_cpu::presets::paper_processor;
use bas_cpu::FreqPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let trials = args.usize("trials", 6);
    let base_seed = args.u64("seed", 1);
    let threads = args.usize("threads", 0);

    let schemes: Vec<(&str, SchedulerSpec)> = vec![
        ("EDF", SchedulerSpec::edf()),
        ("ccEDF", SchedulerSpec::cc_edf()),
        ("BAS-2cc", SchedulerSpec {
            governor: GovernorKind::CcEdf,
            priority: PriorityKind::Pubs,
            scope: ScopeKind::AllReleased,
        }),
        ("laEDF", SchedulerSpec::la_edf()),
        ("BAS-2", SchedulerSpec::bas2()),
    ];

    println!("Utilization sweep — battery lifetime (min), {trials} trials per cell\n");
    let mut table = TextTable::new(&[
        "U", "EDF", "ccEDF", "BAS-2cc", "laEDF", "BAS-2 (laEDF)", "BAS-2cc vs ccEDF", "BAS-2 vs laEDF",
    ]);
    for util in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let rows = parallel_map(trials, threads, |trial| {
            let seed = base_seed
                .wrapping_mul(0x0b67_3e9a)
                .wrapping_add((util * 1000.0) as u64)
                .wrapping_add(trial as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let set = paper_scale_config(4, util).generate(&mut rng).expect("valid");
            schemes
                .iter()
                .map(|(name, spec)| {
                    let mut cell = StochasticKibam::paper_cell(seed ^ 5);
                    simulate_with_battery_custom(
                        &set,
                        spec,
                        &paper_processor(),
                        &mut cell,
                        seed,
                        86_400.0,
                        FreqPolicy::RoundUp,
                        SamplerKind::Persistent,
                    )
                    .unwrap_or_else(|e| panic!("{name} at U={util}: {e}"))
                    .battery
                    .expect("report")
                    .lifetime_minutes()
                })
                .collect::<Vec<f64>>()
        });
        let mean = |i: usize| Summary::of(&rows.iter().map(|r| r[i]).collect::<Vec<_>>()).mean;
        table.row(&[
            format!("{util:.1}"),
            format!("{:.0}", mean(0)),
            format!("{:.0}", mean(1)),
            format!("{:.0}", mean(2)),
            format!("{:.0}", mean(3)),
            format!("{:.0}", mean(4)),
            format!("{:+.1}%", (mean(2) / mean(1) - 1.0) * 100.0),
            format!("{:+.1}%", (mean(4) / mean(3) - 1.0) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("reading: the last two columns isolate the pUBS-ordering gain at constant");
    println!("governor. The gain needs BOTH frequency headroom above the lowest OPP");
    println!("(absent at low load, where the governor is floor-pinned) AND slack left");
    println!("to recover (absent near full load) — so it peaks at mid-high utilization,");
    println!("~0.7 for ccEDF pairs. laEDF defers so aggressively that it stays floor-");
    println!("pinned until U ≳ 0.8.");
}
