//! Figure 6 — energy consumption of the ordering schemes, normalized to the
//! near-optimal schedule, as the number of task graphs grows.
//!
//! "They compare the resulting energy consumption of the various ordering
//! schemes … in scheduling increasing number of taskgraphs with nodes varying
//! from 5 to 15. … The results have been normalized with respect to near
//! optimal schedule obtained by removing precedence constraints within the
//! taskgraphs." (§5) The paper's series start near 1 and diverge as graphs
//! are added, with **pUBS over all released tasks closest to near-optimal**.
//!
//! Setup notes (EXPERIMENTS.md discusses both): the energy comparison runs
//! on the ideal-DVS (dense-grid) processor — on the 3-OPP grid the laEDF
//! governor pins at the lowest OPP and all orderings collapse — and actual
//! computations use persistent per-task fractions so the pUBS estimator has
//! something to learn, mirroring its premise.
//!
//! Each trial normalizes its schemes against the trial's own
//! precedence-relaxed twin set, so this binary drives per-trial
//! [`Experiment`]s under `parallel_map` rather than a plain [`Sweep`].
//!
//! Usage: `cargo run -p bas-bench --release --bin fig6 -- [--trials 40]
//! [--max-graphs 8] [--horizon-periods 4] [--seed 1] [--threads 0]`

use bas_bench::workloads::unit_scale_config;
use bas_bench::{parallel_map, Args, Summary, TextTable};
use bas_core::baseline::strip_precedence;
use bas_core::{Experiment, GovernorKind, PriorityKind, SamplerKind, SchedulerSpec, ScopeKind};
use bas_cpu::presets::dense_dvs_processor;
use bas_cpu::FreqPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec(governor: GovernorKind, priority: PriorityKind, scope: ScopeKind) -> SchedulerSpec {
    SchedulerSpec { governor, priority, scope }
}

fn main() {
    let args = Args::parse();
    let trials = args.usize("trials", 40);
    let max_graphs = args.usize("max-graphs", 8);
    let horizon_periods = args.f64("horizon-periods", 4.0);
    let base_seed = args.u64("seed", 1);
    let threads = args.usize("threads", 0);
    let util = args.f64("util", 0.7);
    // Default ccEDF: the §4.2 mechanism (earlier slack discovery -> lower
    // frequency for the remaining window) presumes a governor that spreads
    // remaining work. Under full Pillai-Shin laEDF deferral the effect
    // inverts (early slack recovery concentrates deferred worst cases into
    // high-frequency tail windows); `--governor laedf` reproduces that
    // inversion, discussed in EXPERIMENTS.md.
    let governor = match args.str("governor", "ccedf").as_str() {
        "ccedf" => GovernorKind::CcEdf,
        "laedf" => GovernorKind::LaEdf,
        other => panic!("--governor must be ccedf|laedf, got {other}"),
    };

    // Each added graph contributes a fixed utilization share, so the system
    // load grows with the graph count and reaches `util` at `max_graphs` —
    // the reading under which the paper's "schemes start diverging from the
    // near optimal [as graphs are added]" emerges: an almost idle system is
    // easy for every ordering; a loaded one separates them.
    let per_graph_util = util / max_graphs as f64;
    println!("Figure 6 reproduction — ordering schemes normalized to near-optimal");
    println!(
        "trials {trials}, graphs 1..={max_graphs} at {per_graph_util:.3} utilization each (total {util} at k={max_graphs}), governor {governor:?}, ideal-DVS processor\n"
    );

    let schemes = [
        ("Random/imminent", spec(governor, PriorityKind::Random, ScopeKind::MostImminent)),
        ("LTF/imminent", spec(governor, PriorityKind::Ltf, ScopeKind::MostImminent)),
        ("pUBS/imminent", spec(governor, PriorityKind::Pubs, ScopeKind::MostImminent)),
        ("pUBS/all-released", spec(governor, PriorityKind::Pubs, ScopeKind::AllReleased)),
    ];

    let mut table = TextTable::new(&[
        "# graphs",
        "Random/imm",
        "LTF/imm",
        "pUBS/imm (BAS-1)",
        "pUBS/all (BAS-2)",
        "near-opt vs fluid bound",
    ]);

    let processor = dense_dvs_processor(20, 0.05);
    for k in 1..=max_graphs {
        let rows = parallel_map(trials, threads, |trial| {
            let seed = base_seed
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add((k as u64) << 40)
                .wrapping_add(trial as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let set = unit_scale_config(k, per_graph_util * k as f64)
                .generate(&mut rng)
                .expect("valid config");
            let horizon = set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max) * horizon_periods;
            // Near-optimal normalizer. The paper normalizes by the
            // precedence-relaxed pUBS schedule; that heuristic loses its
            // near-optimality guarantee in the periodic multi-deadline
            // setting (we measured schemes *beating* it), so the reported
            // normalizer is the true fluid lower bound: all executed cycles
            // at the constant effective speed (convexity => no schedule does
            // better). The relaxed-pUBS schedule is also run and printed as
            // its own series for fidelity to the paper.
            let relaxed = strip_precedence(&set);
            let run = |set: &bas_taskgraph::TaskSet, s: &SchedulerSpec| {
                Experiment::new(set)
                    .spec(*s)
                    .processor(&processor)
                    .seed(seed)
                    .horizon(horizon)
                    .sampler(SamplerKind::Persistent)
                    .run()
                    .expect("set feasible")
                    .metrics
            };
            let relaxed_metrics =
                run(&relaxed, &spec(governor, PriorityKind::Pubs, ScopeKind::AllReleased));
            let fluid = |m: &bas_sim::Metrics| {
                let f_eff = (m.cycles_executed / horizon).clamp(processor.fmin(), processor.fmax());
                let r = processor.realize(f_eff, FreqPolicy::Interpolate);
                let e_exec =
                    m.cycles_executed * processor.battery_current_of(&r) * processor.supply().vbat
                        / r.average_frequency;
                // Remaining wall-clock idles at the idle draw.
                let idle = (horizon - m.cycles_executed / f_eff).max(0.0);
                e_exec + idle * processor.supply().idle_current * processor.supply().vbat
            };
            // Scheme columns use the paper's normalizer (the relaxed-pUBS
            // schedule); the last column reports that normalizer against the
            // fluid bound so its own quality is visible.
            let relaxed_energy = relaxed_metrics.energy;
            let mut row: Vec<f64> =
                schemes.iter().map(|(_, s)| run(&set, s).energy / relaxed_energy).collect();
            row.push(relaxed_energy / fluid(&relaxed_metrics));
            row
        });
        let mut cells = vec![k.to_string()];
        for i in 0..schemes.len() + 1 {
            let s = Summary::of(&rows.iter().map(|r| r[i]).collect::<Vec<_>>());
            cells.push(format!("{:.3}", s.mean));
        }
        table.row(&cells);
    }
    println!("{}", table.render());
    println!("scheme columns are normalized by the paper's near-optimal (precedence-");
    println!("relaxed pUBS) schedule; the last column shows that normalizer against the");
    println!("fluid lower bound (constant effective speed). expected shape (paper Fig. 6):");
    println!("pUBS over all released tasks closest to near-optimal, Random farthest.");
}
