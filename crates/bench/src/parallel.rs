//! Deprecated home of the deterministic parallel fan-out.
//!
//! `parallel_map` moved to [`bas_core::parallel`] when the `Sweep` layer
//! absorbed batch execution; this module remains one release as a shim.

/// Map `f` over `0..jobs` in parallel, preserving index order in the output.
///
/// Moved to `bas_core::parallel::parallel_map` (also re-exported as
/// `bas_bench::parallel_map`); this shim forwards to it.
#[deprecated(since = "0.2.0", note = "moved to bas_core::parallel::parallel_map")]
pub fn parallel_map<T, F>(jobs: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    bas_core::parallel::parallel_map(jobs, threads, f)
}

#[cfg(test)]
mod tests {
    #[test]
    #[allow(deprecated)]
    fn shim_forwards_to_core() {
        let out = super::parallel_map(10, 2, |i| i * 3);
        assert_eq!(out, (0..10).map(|i| i * 3).collect::<Vec<_>>());
    }
}
