//! # bas-bench — the benchmark harness regenerating every table and figure
//!
//! One binary per experiment (see DESIGN.md §4 for the index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — single-DAG ordering vs exhaustive optimum |
//! | `table2` | Table 2 — charge delivered & battery lifetime per scheduler |
//! | `fig4` | Figure 4 — LTF vs STF motivational traces |
//! | `fig5_trace` | Figure 5 — canonical EDF vs pUBS+feasibility traces |
//! | `fig6` | Figure 6 — ordering schemes normalized to near-optimal |
//! | `capacity_curve` | §5 load-vs-delivered-capacity curve + extrapolation |
//! | `guidelines` | §3 guideline experiments (G1 shape, G2 no-idle) |
//! | `crossover` | utilization sweep — where the battery-aware gains appear |
//! | `ablation` | design-choice ablations (freq realization, estimators, feasibility variant) |
//!
//! Run e.g. `cargo run -p bas-bench --release --bin table2 -- --trials 100 --seed 1`.
//!
//! ## Running experiments
//!
//! Since the `Experiment`/`Sweep` redesign the binaries are thin wrappers
//! over `bas_core`'s batch API; each paper artifact maps to one sweep:
//!
//! * **Table 2** (`table2`) — `Sweep::over_seeds(seed, trials)
//!   .specs(table2_lineup()).workload(paper_scale_config(..))
//!   .battery(..)` on the 1 GHz processor; per-spec lifetime and charge
//!   summaries drop straight out of the [`bas_core::SweepReport`].
//! * **Crossover** (`crossover`) — one such sweep per utilization point.
//! * **Ablations 1 & 4** (`ablation`) — the same sweep with the
//!   `.freq_policy(..)` / `.sampler(..)` knobs (and a rescaled processor)
//!   varied between runs.
//! * **Figure 6** (`fig6`) — per-trial [`bas_core::Experiment`]s under
//!   [`bas_core::parallel_map`], because each trial normalizes against its
//!   own precedence-relaxed twin.
//! * **Table 1 / Figure 4** — offline single-DAG scenarios
//!   (`bas_core::single_dag`), no simulator in the loop.
//!
//! The library half holds what is genuinely bench-specific: a tiny flag
//! parser ([`Args`]), text-table rendering ([`TextTable`]) and the standard
//! workload families ([`workloads`]). Parallel sweeps and summary statistics
//! moved into `bas-core` with the experiment API; [`parallel_map`] and
//! [`Summary`] are re-exported here for compatibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod parallel;
pub mod stats;
pub mod table;
pub mod workloads;

pub use args::Args;
pub use bas_core::parallel::parallel_map;
pub use bas_core::stats::Summary;
pub use table::TextTable;
