//! # bas-bench — the benchmark harness regenerating every table and figure
//!
//! One binary per experiment (see DESIGN.md §4 for the index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — single-DAG ordering vs exhaustive optimum |
//! | `table2` | Table 2 — charge delivered & battery lifetime per scheduler |
//! | `fig4` | Figure 4 — LTF vs STF motivational traces |
//! | `fig5_trace` | Figure 5 — canonical EDF vs pUBS+feasibility traces |
//! | `fig6` | Figure 6 — ordering schemes normalized to near-optimal |
//! | `capacity_curve` | §5 load-vs-delivered-capacity curve + extrapolation |
//! | `guidelines` | §3 guideline experiments (G1 shape, G2 no-idle) |
//! | `ablation` | design-choice ablations (freq realization, estimators, feasibility variant) |
//!
//! Run e.g. `cargo run -p bas-bench --release --bin table2 -- --trials 100 --seed 1`.
//!
//! The library half holds the shared pieces: a tiny flag parser, seeded
//! parallel sweeps (crossbeam scoped threads, one RNG stream per job —
//! parallelism never changes results), text-table rendering, and summary
//! statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod parallel;
pub mod stats;
pub mod table;
pub mod workloads;

pub use args::Args;
pub use parallel::parallel_map;
pub use stats::Summary;
pub use table::TextTable;
