//! # bas-bench — the benchmark harness (criterion benches + table rendering)
//!
//! The per-artifact experiment *binaries* that used to live here moved into
//! the unified `bas` CLI (`crates/cli`): every table and figure is now a
//! preset scenario — `bas table2`, `bas fig6 --trials 80`, … — or a scenario
//! file under `scenarios/` run with `bas run <file>`. See `bas list` for the
//! full map and each preset's knobs.
//!
//! What remains here is the *benchmark* half:
//!
//! * the `criterion` wall-clock benches under `benches/` (executor
//!   throughput, battery-model stepping, generator, scheduler overhead,
//!   frequency-realization ablation);
//! * [`TextTable`] — the plain-text table renderer the CLI's text output
//!   uses;
//! * re-exports of the pieces that migrated into `bas-core` as the
//!   experiment/scenario API grew: [`workloads`], [`parallel_map`],
//!   [`Summary`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;
pub mod table;

pub use bas_core::parallel::parallel_map;
pub use bas_core::stats::Summary;
pub use bas_core::workloads;
pub use table::TextTable;
