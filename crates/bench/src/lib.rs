//! # bas-bench — the criterion wall-clock benchmark harness
//!
//! This crate is *only* the benchmarks now:
//!
//! * `benches/end_to_end` — full experiment throughput per scheduler spec;
//! * `benches/stepped_engine` — raw engine stepping on a fixed workload,
//!   1-PE vs 4-PE (the platform refactor's perf trajectory);
//! * `benches/battery_models` — battery-model stepping cost;
//! * `benches/generator` — task-set generation;
//! * `benches/scheduler_overhead` — governor/priority/feasibility inner loops;
//! * `benches/ablation_freq` — frequency-realization ablation.
//!
//! Its former library surface migrated out as the workspace grew:
//! the per-artifact experiment binaries became `bas` CLI presets
//! (`crates/cli`), `parallel_map`/`Summary`/`workloads` moved into
//! `bas-core` during the `Sweep` redesign, and `TextTable` followed as
//! `bas_core::TextTable` when this crate was reduced to benchmarks. Import
//! those from `bas_core` directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
