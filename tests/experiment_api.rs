//! Acceptance tests for the `Experiment`/`Sweep` API redesign:
//!
//! * sweeps are **bit-identical** across thread counts (golden determinism);
//! * `SchedulerSpec` round-trips through `FromStr`/`Display` for every
//!   expressible spec (property test) and every Table 2 row;
//! * the sampler knob actually steers the workload (the old façade silently
//!   ignored it).
//!
//! The deprecated `simulate_*` façade (and the shim-equivalence tests that
//! covered it) was removed after its one release of grace; the `Experiment`
//! builder is the only entry point now.

use battery_aware_scheduling::core::all_specs;
use battery_aware_scheduling::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_set(seed: u64) -> TaskSet {
    let cfg = TaskSetConfig {
        graphs: 3,
        graph: GeneratorConfig {
            nodes: (4, 10),
            wcet: (10, 80),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        },
        utilization: 0.7,
        fmax: 1.0,
        period_quantum: None,
    };
    cfg.generate(&mut StdRng::seed_from_u64(seed)).expect("valid config")
}

#[test]
fn sweep_reports_are_bit_identical_across_thread_counts() {
    let proc = unit_processor();
    let run = |threads: usize| {
        Sweep::over_seeds(9, 8)
            .specs(SchedulerSpec::table2_lineup())
            .workload(TaskSetConfig::default())
            .processor(&proc)
            .horizon(250.0)
            .threads(threads)
            .sampler(SamplerKind::Persistent)
            .run()
            .expect("sweep runs")
    };
    let golden = run(1);
    for threads in [2, 4, 0] {
        assert_eq!(golden, run(threads), "threads = {threads} diverged");
    }
}

#[test]
fn sweep_with_battery_is_thread_count_invariant() {
    let proc = unit_processor();
    let run = |threads: usize| {
        Sweep::over_seeds(4, 4)
            .spec(SchedulerSpec::bas2())
            .workload(TaskSetConfig::default())
            .processor(&proc)
            .horizon(1e6)
            .threads(threads)
            .battery(|seed| Box::new(StochasticKibam::paper_cell(seed)))
            .run()
            .expect("sweep runs")
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn trace_and_battery_runs_stay_deterministic_per_seed() {
    // Replaces the retired shim-equivalence tests: the builder itself is the
    // contract now — identical configuration and seed must reproduce
    // identical metrics, traces and battery accounting.
    let set = random_set(3);
    let proc = unit_processor();
    for sampler in [SamplerKind::IidUniform, SamplerKind::Persistent] {
        for freq in [FreqPolicy::Interpolate, FreqPolicy::RoundUp] {
            let run = || {
                let mut cell = StochasticKibam::paper_cell(77);
                let out = Experiment::new(&set)
                    .spec(SchedulerSpec::bas2())
                    .processor(&proc)
                    .seed(23)
                    .horizon(1e6)
                    .battery(&mut cell)
                    .freq_policy(freq)
                    .sampler(sampler)
                    .trace(true)
                    .run()
                    .unwrap();
                (out.metrics.clone(), out.trace.unwrap().slices().len(), out.battery.unwrap())
            };
            let (m1, t1, b1) = run();
            let (m2, t2, b2) = run();
            assert_eq!(m1, m2, "{sampler:?}/{freq:?}");
            assert_eq!(t1, t2, "{sampler:?}/{freq:?}");
            assert_eq!(b1.lifetime, b2.lifetime, "{sampler:?}/{freq:?}");
            assert_eq!(b1.charge_delivered, b2.charge_delivered, "{sampler:?}/{freq:?}");
        }
    }
}

#[test]
fn every_table2_row_round_trips_through_strings() {
    for (name, spec) in SchedulerSpec::table2_lineup() {
        // Canonical label round-trip…
        let parsed: SchedulerSpec = spec.to_string().parse().unwrap();
        assert_eq!(parsed, spec, "{name} label {}", spec);
        // …and the paper alias parses to the same spec.
        assert_eq!(name.parse::<SchedulerSpec>().unwrap(), spec, "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_spec_round_trips_through_strings(index in 0usize..24) {
        let spec = all_specs()[index];
        let label = spec.to_string();
        let parsed: SchedulerSpec = label.parse().unwrap();
        prop_assert_eq!(parsed, spec, "{}", label);
    }

    #[test]
    fn sweep_seeds_are_stable_and_enumerable(base in 0u64..10_000, trial in 0usize..1000) {
        // The documented derivation — binaries and configs may rely on it.
        let expected = base.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(trial as u64);
        prop_assert_eq!(Sweep::seed_for(base, trial), expected);
    }
}

#[test]
fn experiment_sampler_knob_changes_the_workload() {
    // Regression for the old façade's silent sampler inconsistency: with a
    // short-period set (many completed instances) the same seed must yield
    // different executions under i.i.d. vs persistent actuals.
    let mut set = TaskSet::new();
    let mut b = TaskGraphBuilder::new("g");
    let a = b.add_node("a", 4);
    let c = b.add_node("b", 6);
    b.add_edge(a, c).unwrap();
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 25.0).unwrap());
    let proc = unit_processor();
    let run = |sampler: SamplerKind| {
        Experiment::new(&set)
            .spec(SchedulerSpec::edf())
            .processor(&proc)
            .seed(5)
            .horizon(500.0)
            .sampler(sampler)
            .run()
            .unwrap()
            .metrics
    };
    let iid = run(SamplerKind::IidUniform);
    let persistent = run(SamplerKind::Persistent);
    assert!(iid.instances_completed >= 10);
    assert_ne!(iid.cycles_executed, persistent.cycles_executed);
}
