//! §3's model-coherence claim: "the battery models point in the same
//! direction" — KiBaM, the diffusion model and the stochastic KiBaM must
//! agree on rankings, effects, and (for KiBaM vs its quantization) numbers.

use battery_aware_scheduling::battery::lifetime::delivered_at_constant_current;
use battery_aware_scheduling::battery::{
    run_profile, BatteryModel, DiffusionModel, Kibam, KibamParams, LoadProfile, RunOptions,
    StochasticKibam, StochasticMode,
};

fn models() -> Vec<Box<dyn BatteryModel>> {
    vec![
        Box::new(Kibam::paper_cell()),
        Box::new(DiffusionModel::paper_cell()),
        Box::new(StochasticKibam::paper_cell(5)),
    ]
}

#[test]
fn all_models_show_rate_capacity_effect() {
    for mut m in models() {
        let lo = delivered_at_constant_current(m.as_mut(), 0.2);
        let hi = delivered_at_constant_current(m.as_mut(), 2.0);
        assert!(lo > hi, "{}: {lo} C at 0.2 A vs {hi} C at 2 A", m.name());
    }
}

#[test]
fn all_models_show_recovery_effect() {
    // Pulsed load with rests vs the same load continuous: pulsed must
    // extract more total charge.
    let continuous = LoadProfile::from_pairs([(1.5, 30.0)]);
    let pulsed = LoadProfile::from_pairs([(1.5, 30.0), (0.0, 30.0)]);
    for mut m in models() {
        m.reset();
        let qc = run_profile(m.as_mut(), &continuous, RunOptions::default()).charge_delivered;
        m.reset();
        let qp = run_profile(m.as_mut(), &pulsed, RunOptions::default()).charge_delivered;
        assert!(qp > qc, "{}: pulsed {qp} C vs continuous {qc} C", m.name());
    }
}

#[test]
fn all_models_rank_profile_shapes_identically() {
    // G1 probe experiment: after equal-charge histories, decreasing leaves
    // at least as much extractable as increasing — in every model.
    let dec = LoadProfile::from_pairs([(1.8, 1000.0), (1.0, 1000.0), (0.4, 1000.0)]);
    let inc = dec.reversed();
    for mut m in models() {
        let mut probe_after = |history: &LoadProfile| {
            m.reset();
            let shaped = run_profile(
                m.as_mut(),
                history,
                RunOptions { repeat: false, ..RunOptions::default() },
            );
            assert!(!shaped.died, "{}: history fits capacity", m.name());
            run_profile(m.as_mut(), &LoadProfile::from_pairs([(1.5, 1.0)]), RunOptions::default())
                .charge_delivered
        };
        let after_dec = probe_after(&dec);
        let after_inc = probe_after(&inc);
        assert!(after_dec >= after_inc, "{}: dec {after_dec} C vs inc {after_inc} C", m.name());
    }
}

#[test]
fn stochastic_expectation_equals_kibam_within_tolerance() {
    let params = KibamParams { capacity: 500.0, c: 0.5, k_prime: 2e-3 };
    let mut exact = Kibam::new(params);
    let mut quantized = StochasticKibam::new(params, 1e-3, 0.05, StochasticMode::Expectation, 0);
    // A varied profile: bursts, rests, moderate load.
    let profile = LoadProfile::from_pairs([(2.0, 5.0), (0.0, 5.0), (0.7, 10.0)]);
    let opts = RunOptions { repeat: true, max_time: 1e5, max_step: 0.25 };
    let re = run_profile(&mut exact, &profile, opts);
    let rq = run_profile(&mut quantized, &profile, opts);
    assert!(re.died && rq.died);
    let rel = (re.lifetime - rq.lifetime).abs() / re.lifetime;
    assert!(rel < 0.02, "lifetimes {} vs {} ({}%)", re.lifetime, rq.lifetime, rel * 100.0);
    let rel_q = (re.charge_delivered - rq.charge_delivered).abs() / re.charge_delivered;
    assert!(rel_q < 0.02, "charges {} vs {}", re.charge_delivered, rq.charge_delivered);
}

#[test]
fn sampled_stochastic_clusters_on_its_expectation() {
    let params = KibamParams { capacity: 300.0, c: 0.5, k_prime: 2e-3 };
    let profile = LoadProfile::from_pairs([(1.5, 2.0), (0.2, 2.0)]);
    let opts = RunOptions::default();
    let mut expectation = StochasticKibam::new(params, 1e-3, 0.05, StochasticMode::Expectation, 0);
    let e = run_profile(&mut expectation, &profile, opts).lifetime;
    let mut sum = 0.0;
    let n = 12;
    for seed in 0..n {
        let mut cell = StochasticKibam::new(params, 1e-3, 0.05, StochasticMode::Sampled, seed);
        sum += run_profile(&mut cell, &profile, opts).lifetime;
    }
    let mean = sum / n as f64;
    assert!((mean - e).abs() / e < 0.03, "sampled mean {mean} vs expectation {e}");
}

#[test]
fn capacity_curves_are_monotone_for_all_models() {
    use battery_aware_scheduling::battery::curve::{capacity_curve, log_spaced_currents};
    let currents = log_spaced_currents(0.05, 10.0, 8);
    for mut m in models() {
        let curve = capacity_curve(m.as_mut(), &currents);
        for w in curve.windows(2) {
            assert!(
                w[0].delivered >= w[1].delivered - 2.0, // stochastic noise allowance (C)
                "{}: {w:?}",
                m.name()
            );
        }
    }
}

#[test]
fn paper_cell_nominal_capacity_near_1600mah_at_ampere_loads() {
    // The §5 anchor: ~1600 mAh nominal at the currents the platform draws.
    for mut m in models() {
        let q = delivered_at_constant_current(m.as_mut(), 1.3) / 3.6;
        assert!(
            (1450.0..1750.0).contains(&q),
            "{}: {q} mAh at 1.3 A should be near the 1600 mAh nominal",
            m.name()
        );
    }
}
