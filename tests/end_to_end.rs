//! End-to-end integration: workload generation → scheduling → trace →
//! battery, across every scheduler of the paper's lineup, expressed through
//! the `Experiment` builder.

use battery_aware_scheduling::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_set(seed: u64, graphs: usize, util: f64) -> TaskSet {
    let cfg = TaskSetConfig {
        graphs,
        graph: GeneratorConfig {
            nodes: (5, 15),
            wcet: (10, 100),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        },
        utilization: util,
        fmax: 1.0,
        period_quantum: None,
    };
    cfg.generate(&mut StdRng::seed_from_u64(seed)).expect("valid config")
}

/// Horizon long enough that every graph releases and completes instances
/// (UUniFast can hand a graph a tiny utilization share => a huge period).
fn horizon_for(set: &TaskSet) -> f64 {
    2.0 * set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max)
}

fn run_lean(
    set: &TaskSet,
    spec: SchedulerSpec,
    seed: u64,
    horizon: f64,
) -> Result<battery_aware_scheduling::sim::SimOutcome, battery_aware_scheduling::sim::SimError> {
    let proc = unit_processor();
    Experiment::new(set).spec(spec).processor(&proc).seed(seed).horizon(horizon).run()
}

#[test]
fn every_scheme_meets_every_deadline_across_seeds() {
    for seed in 0..10 {
        let set = random_set(seed, 4, 0.7);
        let horizon = horizon_for(&set);
        for (name, spec) in SchedulerSpec::table2_lineup() {
            let out = run_lean(&set, spec, seed, horizon)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert_eq!(out.metrics.deadline_misses, 0, "{name} seed {seed}");
            assert!(out.metrics.instances_completed > 0, "{name} seed {seed}");
        }
    }
}

#[test]
fn traces_are_well_formed_and_account_charge_exactly() {
    let set = random_set(3, 4, 0.7);
    let proc = unit_processor();
    for (name, spec) in SchedulerSpec::table2_lineup() {
        let out = Experiment::new(&set)
            .spec(spec)
            .processor(&proc)
            .seed(11)
            .horizon(300.0)
            .trace(true)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let trace = out.trace.expect("trace recorded");
        trace.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        let profile = trace.to_load_profile();
        assert!(
            (profile.total_charge() - out.metrics.charge).abs() < 1e-6,
            "{name}: trace integral {} vs metrics {}",
            profile.total_charge(),
            out.metrics.charge
        );
        assert!(
            (profile.duration() - out.metrics.sim_time).abs() < 1e-6,
            "{name}: trace duration vs sim time"
        );
    }
}

#[test]
fn identical_seeds_give_bit_identical_runs() {
    let set = random_set(5, 3, 0.6);
    for (_, spec) in SchedulerSpec::table2_lineup() {
        let a = run_lean(&set, spec, 21, 300.0).unwrap();
        let b = run_lean(&set, spec, 21, 300.0).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }
}

#[test]
fn energy_ordering_no_dvs_worst() {
    // DVS always beats running flat out, for any seed.
    for seed in 0..5 {
        let set = random_set(seed + 100, 4, 0.7);
        let horizon = horizon_for(&set);
        let edf = run_lean(&set, SchedulerSpec::edf(), 9, horizon).unwrap().metrics.energy;
        for spec in [SchedulerSpec::cc_edf(), SchedulerSpec::la_edf(), SchedulerSpec::bas2()] {
            let e = run_lean(&set, spec, 9, horizon).unwrap().metrics.energy;
            assert!(e < edf, "seed {seed}: {} J must undercut EDF's {edf} J", e);
        }
    }
}

#[test]
fn battery_cosim_agrees_with_metrics_integral() {
    // The battery's delivered charge must equal the executor's charge
    // accounting for every model (this pinned down a real bug in the
    // stochastic model's slot billing).
    let set = random_set(7, 4, 0.7);
    let proc = unit_processor();
    let models: Vec<Box<dyn BatteryModel>> = vec![
        Box::new(Kibam::new(bas_battery::KibamParams { capacity: 400.0, c: 0.6, k_prime: 1e-3 })),
        Box::new(DiffusionModel::new(bas_battery::DiffusionParams {
            alpha: 400.0,
            beta_squared: 5e-3,
            terms: 10,
        })),
        Box::new(StochasticKibam::new(
            bas_battery::KibamParams { capacity: 400.0, c: 0.6, k_prime: 1e-3 },
            1e-3,
            0.1,
            bas_battery::StochasticMode::Sampled,
            3,
        )),
    ];
    for mut cell in models {
        let out = Experiment::new(&set)
            .spec(SchedulerSpec::bas2())
            .processor(&proc)
            .seed(13)
            .horizon(1e5)
            .battery(cell.as_mut())
            .run()
            .expect("feasible");
        let report = out.battery.expect("report");
        assert!(report.died, "{}", cell.name());
        assert!(
            (report.charge_delivered - out.metrics.charge).abs()
                < 1e-3 * report.charge_delivered.max(1.0),
            "{}: battery {} C vs metrics {} C",
            cell.name(),
            report.charge_delivered,
            out.metrics.charge
        );
    }
}

use bas_battery::BatteryModel;
use battery_aware_scheduling::battery as bas_battery;

#[test]
fn lifetimes_order_edf_ccedf_laedf() {
    // The Table-2 backbone on a reduced sweep: EDF < ccEDF < laEDF lifetime.
    let proc = unit_processor();
    let mut lifetimes = Vec::new();
    let lineup = SchedulerSpec::table2_lineup();
    for (name, spec) in &lineup[..3] {
        let mut total = 0.0;
        for seed in 0..3 {
            let set = random_set(seed + 50, 4, 0.7);
            let mut cell = Kibam::new(bas_battery::KibamParams {
                capacity: 2000.0,
                c: 0.625,
                k_prime: 4.5e-4,
            });
            let out = Experiment::new(&set)
                .spec(*spec)
                .processor(&proc)
                .seed(seed)
                .horizon(1e6)
                .battery(&mut cell)
                .run()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            total += out.battery.expect("report").lifetime;
        }
        lifetimes.push((name, total));
    }
    assert!(
        lifetimes[0].1 < lifetimes[1].1 && lifetimes[1].1 < lifetimes[2].1,
        "lifetime order violated: {lifetimes:?}"
    );
}
