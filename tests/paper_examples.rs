//! The paper's worked examples, reproduced exactly.

use battery_aware_scheduling::core::policy::BasPolicy;
use battery_aware_scheduling::core::priority::Priority;
use battery_aware_scheduling::core::single_dag::{Scenario, XSource};
use battery_aware_scheduling::prelude::*;
use battery_aware_scheduling::sim::policy::EdfTopo;
use battery_aware_scheduling::sim::trace::SliceKind;
use battery_aware_scheduling::sim::SimState;

/// Figure 4's two tasks (wc 4 and 6, deadline 10).
fn fig4(a1: f64, a2: f64) -> Scenario {
    let mut b = TaskGraphBuilder::new("fig4");
    b.add_node("task1", 4);
    b.add_node("task2", 6);
    Scenario::new(b.build().unwrap(), 10.0, vec![a1, a2], unit_processor()).unwrap()
}

#[test]
fn figure4_case1_stf_wins() {
    let s = fig4(1.6, 3.6); // 40 % and 60 % of wc
    assert!(s.run_stf().energy < s.run_ltf().energy);
}

#[test]
fn figure4_case2_ltf_wins() {
    let s = fig4(2.4, 2.4); // 60 % and 40 % of wc
    assert!(s.run_ltf().energy < s.run_stf().energy);
}

#[test]
fn figure4_pubs_with_oracle_wins_both_cases() {
    for (a1, a2) in [(1.6, 3.6), (2.4, 2.4)] {
        let s = fig4(a1, a2);
        let pubs = s.run_pubs(XSource::Oracle).energy;
        assert!(pubs <= s.run_ltf().energy + 1e-9, "case ({a1},{a2})");
        assert!(pubs <= s.run_stf().energy + 1e-9, "case ({a1},{a2})");
    }
}

/// Figure 5's task set: T1 (5, D20), T2 (5, D50), T3 (3×5, D100); U = 0.5.
fn fig5_set() -> TaskSet {
    let mut set = TaskSet::new();
    let mut b = TaskGraphBuilder::new("T1");
    b.add_node("t1", 5);
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 20.0).unwrap());
    let mut b = TaskGraphBuilder::new("T2");
    b.add_node("t2", 5);
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 50.0).unwrap());
    let mut b = TaskGraphBuilder::new("T3");
    for i in 0..3 {
        b.add_node(format!("t3{i}"), 5);
    }
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 100.0).unwrap());
    set
}

struct T3First;
impl Priority for T3First {
    fn name(&self) -> &'static str {
        "T3>T2>T1"
    }
    fn rank(&mut self, _: &SimState, c: &[TaskRef], _: f64, out: &mut Vec<TaskRef>) {
        out.clear();
        out.extend_from_slice(c);
        out.sort_by(|a, b| b.graph.cmp(&a.graph).then(a.node.cmp(&b.node)));
    }
}

#[test]
fn figure5_both_orderings_meet_deadlines_at_fref_half() {
    let run = |use_pubs: bool| {
        let mut governor = CcEdf;
        let mut sampler = WorstCase;
        let cfg = SimConfig::new(unit_processor());
        let out = if use_pubs {
            let mut policy = BasPolicy::all_released(T3First);
            let mut sim =
                Simulation::new(fig5_set(), cfg, &mut governor, &mut policy, &mut sampler).unwrap();
            sim.run_until(100.0).unwrap();
            sim.finish()
        } else {
            let mut policy = EdfTopo;
            let mut sim =
                Simulation::new(fig5_set(), cfg, &mut governor, &mut policy, &mut sampler).unwrap();
            sim.run_until(100.0).unwrap();
            sim.finish()
        };
        assert_eq!(out.metrics.deadline_misses, 0);
        let trace = out.trace.unwrap();
        trace.validate().unwrap();
        // fref = U = 0.5 throughout (all tasks at wcet): never exceeded.
        for s in trace.slices() {
            if let SliceKind::Run { frequency, .. } = s.kind {
                assert!(frequency <= 0.5 + 1e-9, "frequency {frequency} above fref");
            }
        }
        trace
    };
    let canonical = run(false);
    let pubs = run(true);
    // The pUBS variant pulls T3 work ahead of T1's later instances; canonical
    // EDF never runs T3 before the most imminent graph is exhausted of work.
    let first_t3 = |t: &battery_aware_scheduling::sim::trace::Trace| {
        t.slices()
            .iter()
            .find_map(|s| match s.kind {
                SliceKind::Run { task, .. } if task.graph.index() == 2 => Some(s.start),
                _ => None,
            })
            .expect("T3 runs eventually")
    };
    assert!(first_t3(&pubs) < first_t3(&canonical));
    // Both execute the same total work over the hyperperiod.
    assert!((canonical.busy_time() - pubs.busy_time()).abs() < 1e-6);
}

#[test]
fn figure5_out_of_order_is_blocked_when_infeasible() {
    // Same set but a tighter fref (drop T1's period to 11 so U ≈ 0.7):
    // at t = 0 running T3 (5 cycles) before T1 would need
    // 5 + 5 = 10 > 0.7·11 = 7.7 — the feasibility check must refuse and the
    // policy must fall back to T1.
    let mut set = TaskSet::new();
    let mut b = TaskGraphBuilder::new("T1");
    b.add_node("t1", 5);
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 11.0).unwrap());
    let mut b = TaskGraphBuilder::new("T3");
    for i in 0..3 {
        b.add_node(format!("t3{i}"), 5);
    }
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 100.0).unwrap());
    let mut governor = CcEdf;
    let mut policy = BasPolicy::all_released(T3First);
    let mut sampler = WorstCase;
    let mut sim = Simulation::new(
        set,
        SimConfig::new(unit_processor()),
        &mut governor,
        &mut policy,
        &mut sampler,
    )
    .unwrap();
    sim.run_until(100.0).unwrap();
    let out = sim.finish();
    assert_eq!(out.metrics.deadline_misses, 0, "feasibility check must protect T1");
    let trace = out.trace.unwrap();
    // T1 must run first even though the priority ranked T3 higher.
    let first = trace.execution_order()[0];
    assert_eq!(first.graph.index(), 0, "infeasible out-of-order pick must be demoted");
}

#[test]
fn table1_shape_pubs_closest_to_optimal() {
    // One compact Table-1 row: pUBS(oracle) must beat LTF/STF/Random and sit
    // within a few percent of the exhaustive optimum.
    use battery_aware_scheduling::taskgraph::GeneratorConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut totals = [0.0f64; 4]; // random, ltf, pubs_oracle, optimal
    let trials = 20;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GeneratorConfig {
            nodes: (8, 8),
            wcet: (10, 100),
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        };
        let g = cfg.generate("g", &mut rng);
        let s =
            Scenario::with_utilization(g, 0.7, dense_dvs_processor(20, 0.05), (0.2, 1.0), &mut rng)
                .unwrap();
        totals[0] += s.run_random(&mut rng).energy;
        totals[1] += s.run_ltf().energy;
        totals[2] += s.run_pubs(XSource::Oracle).energy;
        totals[3] += s.optimal().energy;
    }
    let opt = totals[3];
    assert!(totals[2] < totals[1], "pUBS(oracle) must beat LTF");
    assert!(totals[2] < totals[0], "pUBS(oracle) must beat Random");
    assert!(
        totals[2] / opt < 1.05,
        "pUBS(oracle) must be within 5% of optimal, got {}",
        totals[2] / opt
    );
}
