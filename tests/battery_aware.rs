//! Battery-aware scheduling end to end: the engine's scheduler-visible
//! battery state must actually steer decisions, and the checked-in
//! `scenarios/battery-aware.toml` must exercise exactly that.

use battery_aware_scheduling::battery::IdealModel;
use battery_aware_scheduling::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

fn workload(seed: u64) -> TaskSet {
    TaskSetConfig::default().generate(&mut StdRng::seed_from_u64(seed)).unwrap()
}

fn run(set: &TaskSet, spec: SchedulerSpec, capacity: f64, horizon: f64) -> SimOutcomeParts {
    let proc = unit_processor();
    let mut cell = IdealModel::new(capacity);
    let out = Experiment::new(set)
        .spec(spec)
        .processor(&proc)
        .seed(5)
        .horizon(horizon)
        .battery(&mut cell)
        .run()
        .unwrap();
    SimOutcomeParts { metrics: out.metrics, died: out.battery.expect("battery mounted").died }
}

struct SimOutcomeParts {
    metrics: battery_aware_scheduling::sim::Metrics,
    died: bool,
}

#[test]
fn bas_soc_reacts_to_state_of_charge_where_bas2_cannot() {
    let set = workload(3);
    let horizon = 2.0 * set.iter().map(|(_, g)| g.period()).fold(0.0, f64::max);

    // Size the cell from a reference run so the state of charge crosses the
    // 0.5 threshold mid-run without exhausting: 1.6× the consumed charge
    // ends near SoC 0.375.
    let reference = run(&set, SchedulerSpec::bas2(), 1e9, horizon);
    let capacity = 1.6 * reference.metrics.charge;

    // Comfortable battery: BAS-soc is BAS-2 (the wrap is transparent).
    let comfy_bas2 = run(&set, SchedulerSpec::bas2(), 100.0 * capacity, horizon);
    let comfy_soc = run(&set, SchedulerSpec::bas_soc(), 100.0 * capacity, horizon);
    assert_eq!(comfy_bas2.metrics, comfy_soc.metrics);

    // Strained battery: the same workload now draws different frequency
    // decisions from BAS-soc — the battery state visibly steers the
    // schedule — while both stay miss-free.
    let strained_bas2 = run(&set, SchedulerSpec::bas2(), capacity, horizon);
    let strained_soc = run(&set, SchedulerSpec::bas_soc(), capacity, horizon);
    assert_eq!(strained_bas2.metrics.deadline_misses, 0);
    assert_eq!(strained_soc.metrics.deadline_misses, 0);
    assert!(!strained_soc.died);
    assert_ne!(
        strained_bas2.metrics, strained_soc.metrics,
        "low state of charge must change BAS-soc's schedule"
    );
}

#[test]
fn battery_aware_scenario_file_exercises_the_soc_spec() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let scenario = Scenario::load(&root.join("scenarios/battery-aware.toml")).unwrap();
    assert_eq!(scenario.kind, ScenarioKind::Sweep);
    assert_eq!(scenario.specs, vec!["BAS-2".to_string(), "BAS-soc".to_string()]);
    assert_ne!(scenario.battery, "none", "the SoC spec needs a mounted battery to react to");
    let specs = scenario.parsed_specs().unwrap();
    assert_eq!(specs[1].1, SchedulerSpec::bas_soc());
    scenario.validate().unwrap();
}

#[test]
fn battery_aware_scenario_runs_head_to_head() {
    // A shrunken copy of the checked-in scenario (1 trial, short horizon,
    // deterministic kibam cell) must run clean through the sweep layer with
    // both specs.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut scenario = Scenario::load(&root.join("scenarios/battery-aware.toml")).unwrap();
    scenario.set("trials", "1").unwrap();
    scenario.set("horizon", "2000").unwrap();
    scenario.set("battery", "kibam").unwrap();
    scenario.validate().unwrap();
    let report = scenario.run_sweep().unwrap();
    assert_eq!(report.specs.len(), 2);
    for spec in &report.specs {
        assert!(spec.trials.iter().all(|t| t.deadline_misses == 0), "{}", spec.label);
        assert!(spec.lifetime_min.is_some(), "{}", spec.label);
    }
}
