//! Property-based tests over the whole stack (proptest).

use battery_aware_scheduling::battery::{
    BatteryModel, Kibam, KibamParams, StochasticKibam, StochasticMode,
};
use battery_aware_scheduling::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_shape() -> impl Strategy<Value = GraphShape> {
    prop_oneof![
        Just(GraphShape::Independent),
        (2usize..=4, 2usize..=4)
            .prop_map(|(o, i)| GraphShape::FanInFanOut { max_out: o, max_in: i }),
        (2usize..=4, 0.05f64..0.5)
            .prop_map(|(l, p)| GraphShape::Layered { layers: l, edge_prob: p }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_graphs_satisfy_dag_invariants(
        seed in 0u64..10_000,
        n in 1usize..20,
        shape in arb_shape(),
    ) {
        let cfg = GeneratorConfig { nodes: (n, n), wcet: (1, 50), shape };
        let g = cfg.generate("g", &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.node_count(), n);
        // Topological order covers every node exactly once and respects edges.
        let topo = g.topological_order();
        prop_assert_eq!(topo.len(), n);
        let mut pos = vec![usize::MAX; n];
        for (i, &v) in topo.iter().enumerate() {
            pos[v.index()] = i;
        }
        for (from, to) in g.edges() {
            prop_assert!(pos[from.index()] < pos[to.index()]);
        }
        // Critical path bounds: heaviest node <= cp <= total.
        let heaviest = g.nodes().map(|(_, t)| t.wcet).max().unwrap();
        prop_assert!(g.critical_path() >= heaviest);
        prop_assert!(g.critical_path() <= g.total_wcet());
    }

    #[test]
    fn schedulable_sets_never_miss_deadlines(
        seed in 0u64..5_000,
        graphs in 1usize..5,
        util in 0.2f64..0.95,
        scheme in 0usize..5,
    ) {
        let cfg = TaskSetConfig {
            graphs,
            graph: GeneratorConfig {
                nodes: (3, 10),
                wcet: (5, 60),
                shape: GraphShape::Layered { layers: 3, edge_prob: 0.25 },
            },
            utilization: util,
            fmax: 1.0,
            period_quantum: None,
        };
        let set = cfg.generate(&mut StdRng::seed_from_u64(seed)).unwrap();
        let (_, spec) = SchedulerSpec::table2_lineup()[scheme];
        let proc = unit_processor();
        let out = Experiment::new(&set)
            .spec(spec)
            .processor(&proc)
            .seed(seed)
            .horizon(200.0)
            .run()
            .unwrap();
        prop_assert_eq!(out.metrics.deadline_misses, 0);
    }

    #[test]
    fn time_accounting_is_exact(
        seed in 0u64..5_000,
        graphs in 1usize..4,
    ) {
        let cfg = TaskSetConfig {
            graphs,
            graph: GeneratorConfig {
                nodes: (3, 8),
                wcet: (5, 60),
                shape: GraphShape::Layered { layers: 2, edge_prob: 0.3 },
            },
            utilization: 0.7,
            fmax: 1.0,
            period_quantum: None,
        };
        let set = cfg.generate(&mut StdRng::seed_from_u64(seed)).unwrap();
        let proc = unit_processor();
        let out = Experiment::new(&set)
            .spec(SchedulerSpec::bas2())
            .processor(&proc)
            .seed(seed)
            .horizon(150.0)
            .run()
            .unwrap();
        let m = &out.metrics;
        prop_assert!((m.busy_time + m.idle_time - m.sim_time).abs() < 1e-6);
        prop_assert!((m.sim_time - 150.0).abs() < 1e-6);
        // Charge is bounded by running flat-out the whole horizon.
        let i_max = unit_processor().battery_current_at(2);
        prop_assert!(m.charge <= i_max * m.sim_time + 1e-6);
    }

    #[test]
    fn kibam_conserves_charge(
        c in 0.2f64..0.8,
        k_prime in 1e-4f64..1e-1,
        current in 0.01f64..5.0,
        dt in 0.01f64..50.0,
        steps in 1usize..40,
    ) {
        let params = KibamParams { capacity: 100.0, c, k_prime };
        let mut cell = Kibam::new(params);
        for _ in 0..steps {
            if cell.step(current, dt).is_exhausted() {
                break;
            }
        }
        let s = cell.state();
        let total = s.available + s.bound + cell.charge_delivered();
        prop_assert!((total - 100.0).abs() < 1e-6, "conservation violated: {}", total);
    }

    #[test]
    fn kibam_delivered_capacity_is_monotone_in_load(
        c in 0.3f64..0.8,
        k_prime in 1e-4f64..1e-2,
        i_lo in 0.05f64..1.0,
        factor in 1.1f64..10.0,
    ) {
        let params = KibamParams { capacity: 100.0, c, k_prime };
        let mut cell = Kibam::new(params);
        let q_lo = battery_aware_scheduling::battery::lifetime::delivered_at_constant_current(
            &mut cell, i_lo,
        );
        let q_hi = battery_aware_scheduling::battery::lifetime::delivered_at_constant_current(
            &mut cell,
            i_lo * factor,
        );
        prop_assert!(q_lo >= q_hi - 1e-9, "q({i_lo}) = {q_lo} < q({}) = {q_hi}", i_lo * factor);
    }

    #[test]
    fn stochastic_kibam_never_exceeds_capacity(
        seed in 0u64..1_000,
        current in 0.1f64..5.0,
    ) {
        let params = KibamParams { capacity: 50.0, c: 0.5, k_prime: 1e-2 };
        let mut cell = StochasticKibam::new(params, 1e-3, 0.05, StochasticMode::Sampled, seed);
        while !cell.is_exhausted() {
            cell.step(current, 0.5);
        }
        prop_assert!(cell.charge_delivered() <= 50.0 + 1e-6);
        prop_assert!(cell.charge_delivered() > 0.0);
    }

    #[test]
    fn realization_always_delivers_requested_average(
        fref in 0.0f64..2.0,
    ) {
        let p = unit_processor();
        let r = p.realize(fref, FreqPolicy::Interpolate);
        let clamped = fref.clamp(p.fmin(), p.fmax());
        prop_assert!((r.average_frequency - clamped).abs() < 1e-12);
        let total: f64 = r.segments().map(|s| s.time_fraction).sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uunifast_always_sums_to_target(
        n in 1usize..30,
        total in 0.05f64..1.0,
        seed in 0u64..1_000,
    ) {
        let shares = battery_aware_scheduling::taskgraph::generator::uunifast(
            n, total, &mut StdRng::seed_from_u64(seed),
        );
        prop_assert_eq!(shares.len(), n);
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
        prop_assert!(shares.iter().all(|&u| u >= 0.0));
    }
}
