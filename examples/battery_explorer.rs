//! Explore the battery models directly: the recovery effect, the
//! rate-capacity effect, and how the models agree (§3's "the battery models
//! point in the same direction").
//!
//! This example stays below the scheduler: it drives `LoadProfile`s into the
//! battery models by hand, resolving the models through the named registry
//! (`bas_battery::registry::by_name` — the same names scenario files use)
//! and taking its load grid from `scenarios/battery-explorer.toml`. For the
//! scheduling layer on top, see the `quickstart`, `media_player` and
//! `sensor_node` examples, which load their runs from scenario files.
//!
//! Run with: `cargo run --release --example battery_explorer`

use battery_aware_scheduling::battery::curve::log_spaced_currents;
use battery_aware_scheduling::battery::registry;
use battery_aware_scheduling::battery::units::coulombs_to_mah;
use battery_aware_scheduling::prelude::*;
use std::path::Path;

fn main() {
    // The load grid comes from a scenario file (kind `capacity-curve`).
    let scenario = Scenario::load(Path::new("scenarios/battery-explorer.toml"))
        .expect("scenarios/battery-explorer.toml loads (run from the workspace root)");
    let loads = log_spaced_currents(scenario.lo, scenario.hi, scenario.points);

    // ---- rate-capacity effect -----------------------------------------
    println!("rate-capacity effect — delivered capacity at constant load:");
    println!("{:>9}  {:>10}  {:>10}", "load (A)", "KiBaM", "diffusion");
    for &current in &loads {
        let mut kibam = registry::by_name("kibam", 0).expect("registered model");
        let mut diff = registry::by_name("diffusion", 0).expect("registered model");
        let q_k = bas_delivered(kibam.as_mut(), current);
        let q_d = bas_delivered(diff.as_mut(), current);
        println!(
            "{current:>9.1}  {:>7.0} mAh  {:>7.0} mAh",
            coulombs_to_mah(q_k),
            coulombs_to_mah(q_d)
        );
    }

    // ---- recovery effect ----------------------------------------------
    println!("\nrecovery effect — 1.5 A bursts with and without rest gaps:");
    let continuous = LoadProfile::from_pairs([(1.5, 60.0)]);
    let pulsed = LoadProfile::from_pairs([(1.5, 60.0), (0.06, 60.0)]);
    for (name, profile) in [("continuous 1.5 A", &continuous), ("1 min on / 1 min rest", &pulsed)] {
        let mut cell = registry::by_name("kibam", 0).expect("registered model");
        let r = run_profile(cell.as_mut(), profile, RunOptions::default());
        println!(
            "  {name:22}: {:6.0} mAh delivered over {:5.1} min of load time",
            r.delivered_mah(),
            // count only the high-load time for the pulsed profile
            if name.starts_with("continuous") {
                r.lifetime / 60.0
            } else {
                r.lifetime / 2.0 / 60.0
            }
        );
    }
    println!("  rest periods let bound charge migrate to the electrode: the same cell");
    println!("  sustains the bursts for longer and surrenders more total charge.");

    // ---- model coherence ------------------------------------------------
    println!("\nmodel coherence — both models prefer the same profile shapes:");
    let shapes = [
        ("decreasing", LoadProfile::from_pairs([(1.8, 1000.0), (1.0, 1000.0), (0.4, 1000.0)])),
        ("increasing", LoadProfile::from_pairs([(0.4, 1000.0), (1.0, 1000.0), (1.8, 1000.0)])),
    ];
    for (name, profile) in &shapes {
        let mut kibam = registry::by_name("kibam", 0).expect("registered model");
        run_profile(kibam.as_mut(), profile, RunOptions { repeat: false, ..RunOptions::default() });
        let probe_k = bas_delivered_from(kibam.as_mut(), 1.5);
        let mut diff = registry::by_name("diffusion", 0).expect("registered model");
        run_profile(diff.as_mut(), profile, RunOptions { repeat: false, ..RunOptions::default() });
        let probe_d = bas_delivered_from(diff.as_mut(), 1.5);
        println!(
            "  after {name} history: extra extractable {:4.0} mAh (KiBaM) / {:4.0} mAh (diffusion)",
            coulombs_to_mah(probe_k),
            coulombs_to_mah(probe_d)
        );
    }
    println!("  the ranking agrees — the formal coherence §3 leans on (proved in [12]).");
}

/// Fresh-cell delivered charge at a constant current.
fn bas_delivered(model: &mut dyn BatteryModel, current: f64) -> f64 {
    model.reset();
    bas_delivered_from(model, current)
}

/// Delivered charge from the model's current state at a constant current.
fn bas_delivered_from(model: &mut dyn BatteryModel, current: f64) -> f64 {
    let before = model.charge_delivered();
    let profile = LoadProfile::from_pairs([(current, 1.0)]);
    run_profile(model, &profile, RunOptions::default());
    model.charge_delivered() - before
}
