//! Drive the stepped engine by hand: observers, live battery state, and the
//! streaming `bas-events/v2` JSONL export.
//!
//! The [`Simulation`] lifecycle replaces the old run-to-completion calls:
//! you can `step()` it, pause at any limit with `run_until(..)`, watch the
//! scheduler-visible state of charge between steps, and attach any number
//! of [`SimObserver`]s — here a custom per-task busy-time histogram plus a
//! [`JsonlWriter`] streaming every event to a file with O(1) memory.
//!
//! Run with: `cargo run --release --example event_stream`

use battery_aware_scheduling::battery::IdealModel;
use battery_aware_scheduling::core::policy::BasPolicy;
use battery_aware_scheduling::core::priority::Ltf;
use battery_aware_scheduling::dvs::LaEdf;
use battery_aware_scheduling::prelude::*;
use std::collections::BTreeMap;

/// A custom observer: per-task busy seconds, folded from the event stream.
/// Anything the built-in trace/metrics record, an observer can compute —
/// without the engine buffering a thing.
#[derive(Default)]
struct BusyHistogram {
    per_task: BTreeMap<TaskRef, f64>,
}

impl SimObserver for BusyHistogram {
    fn on_event(&mut self, _state: &battery_aware_scheduling::sim::SimState, event: &SimEvent) {
        if let SimEvent::Progress { task, busy, .. } = event {
            *self.per_task.entry(*task).or_insert(0.0) += busy;
        }
    }
}

fn main() {
    // A small fixed workload: two periodic graphs on the unit processor.
    let mut set = TaskSet::new();
    let mut b = TaskGraphBuilder::new("sensor");
    let read = b.add_node("read", 2);
    let filt = b.add_node("filter", 3);
    b.add_edge(read, filt).unwrap();
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 10.0).unwrap());
    let mut b = TaskGraphBuilder::new("radio");
    b.add_node("tx", 2);
    set.push(PeriodicTaskGraph::new(b.build().unwrap(), 5.0).unwrap());

    let mut governor = LaEdf::with_fmax(1.0);
    let mut policy = BasPolicy::all_released(Ltf);
    let mut sampler = WorstCase;
    let mut battery = IdealModel::new(40.0);
    let mut histogram = BusyHistogram::default();
    let events_path = std::env::temp_dir().join("bas-event-stream-example.jsonl");
    let mut jsonl = JsonlWriter::new(std::io::BufWriter::new(
        std::fs::File::create(&events_path).expect("temp file"),
    ));
    jsonl.header("event-stream-example", "laEDF+LTF/all", 0);

    let mut sim = Simulation::new(
        set,
        SimConfig::new(unit_processor()),
        &mut governor,
        &mut policy,
        &mut sampler,
    )
    .expect("feasible workload");
    sim.mount_battery(&mut battery);
    sim.attach(&mut histogram);
    sim.attach(&mut jsonl);

    // Pause every 10 simulated seconds and read the live battery view the
    // schedulers themselves see.
    for checkpoint in [10.0, 20.0, 30.0, 40.0] {
        let step = sim.run_until(checkpoint).expect("no deadline misses");
        let soc = sim.state().battery().expect("battery mounted").state_of_charge;
        println!(
            "t = {:5.1} s  state of charge = {:5.1} %  ({step:?})",
            sim.state().now(),
            100.0 * soc
        );
        if step == Step::BatteryExhausted {
            break;
        }
    }

    let outcome = sim.finish();
    println!("\nper-task busy time (custom observer):");
    for (task, busy) in &histogram.per_task {
        println!("  {task}: {busy:.1} s");
    }
    let report = outcome.battery.expect("battery mounted");
    println!(
        "\nmetrics: {} decisions, {:.1} C drawn; battery died = {} at t = {:.1} s",
        outcome.metrics.decisions, outcome.metrics.charge, report.died, report.lifetime
    );
    // into_inner surfaces write errors; flushing surfaces buffered ones —
    // only then is the stream really on disk.
    use std::io::Write as _;
    match jsonl.into_inner().and_then(|mut sink| sink.flush()) {
        Ok(()) => println!("bas-events/v2 stream written to {}", events_path.display()),
        Err(e) => eprintln!("event stream failed: {e}"),
    }
}
