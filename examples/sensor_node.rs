//! A battery-powered sensor node: sample → filter → transmit, with a slow
//! calibration loop — the "energy-autonomous embedded system" of the paper's
//! conclusion, where the battery *is* the mission budget.
//!
//! Shows a mission-length question asked through a scenario file: the task
//! graphs are built in code, while `scenarios/sensor-node.toml` carries the
//! scheduler lineup (BAS-2cc vs the no-DVS baseline, the latter written in
//! the canonical `governor+priority/scope` grammar), the persistent-actuals
//! sampler — real sensor tasks have *characteristic* run times — the
//! battery model and the week-long horizon. (Schedulers outside the
//! [`SchedulerSpec`] vocabulary — custom estimators, hand-rolled priorities —
//! can still assemble `governor + policy + sampler` around the `Simulation` engine
//! directly; see the `bas` CLI's `ablation` preset.)
//!
//! Run with: `cargo run --release --example sensor_node`

use battery_aware_scheduling::prelude::*;
use std::path::Path;

const MC: u64 = 1_000_000;

fn sensing_graph() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("sense");
    let sample = b.add_node("sample-adc", 10 * MC);
    let filter = b.add_node("filter", 60 * MC);
    let pack = b.add_node("pack", 8 * MC);
    let tx = b.add_node("transmit", 40 * MC);
    b.add_edge(sample, filter).unwrap();
    b.add_edge(filter, pack).unwrap();
    b.add_edge(pack, tx).unwrap();
    b.build().unwrap()
}

fn calibration_graph() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("calibrate");
    let measure = b.add_node("self-measure", 40 * MC);
    let update = b.add_node("update-coeffs", 25 * MC);
    b.add_edge(measure, update).unwrap();
    b.build().unwrap()
}

fn main() {
    let mut set = TaskSet::new();
    set.push(PeriodicTaskGraph::new(sensing_graph(), 0.250).unwrap());
    set.push(PeriodicTaskGraph::new(calibration_graph(), 2.0).unwrap());

    let scenario = Scenario::load(Path::new("scenarios/sensor-node.toml"))
        .expect("scenarios/sensor-node.toml loads (run from the workspace root)");
    let processor = scenario.build_processor().expect("valid processor preset");
    println!(
        "sensor node: U = {:.3}, {} tasks across {} graphs",
        set.utilization(processor.fmax()),
        set.total_nodes(),
        set.len()
    );

    // One sweep over the fixed, hand-built task set: both schedulers see the
    // same seed, workload and (fresh) battery, so the mission comparison is
    // like-for-like.
    let report = scenario.run_sweep_with_set(&set).expect("no deadline misses");

    let bas = &report.spec("BAS-2cc").expect("lineup has BAS-2cc").trials[0];
    let readings = bas.instances_completed;
    println!(
        "\nBAS-2cc mission: {:.1} hours on one cell, {} task-graph instances,",
        bas.lifetime.expect("battery run") / 3600.0,
        readings
    );
    println!(
        "  {:.0} mAh extracted, 0 misses (asserted below)",
        bas.delivered_mah.expect("battery run"),
    );
    assert_eq!(bas.deadline_misses, 0);

    // The EDF-style baseline for contrast, same workload and seed.
    let edf = &report.spec("noDVS+random/all").expect("lineup has the baseline").trials[0];
    println!(
        "\nno-DVS baseline: {:.1} hours — battery awareness extends the mission {:.1}x",
        edf.lifetime.expect("battery run") / 3600.0,
        bas.lifetime.expect("battery run") / edf.lifetime.expect("battery run")
    );
}
