//! A battery-powered sensor node: sample → filter → transmit, with a slow
//! calibration loop — the "energy-autonomous embedded system" of the paper's
//! conclusion, where the battery *is* the mission budget.
//!
//! Shows a mission-length question asked through the [`Experiment`] builder:
//! how many sensor readings does one cell deliver end-to-end? Real sensor
//! tasks have *characteristic* run times, so the builder's `.sampler(..)`
//! knob selects persistent per-task actuals. (Schedulers outside the
//! [`SchedulerSpec`] vocabulary — custom estimators, hand-rolled priorities —
//! can still assemble `governor + policy + sampler` around the `Executor`
//! directly; see `bas-bench`'s `ablation` binary.)
//!
//! Run with: `cargo run --release --example sensor_node`

use battery_aware_scheduling::prelude::*;

const MC: u64 = 1_000_000;

fn sensing_graph() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("sense");
    let sample = b.add_node("sample-adc", 10 * MC);
    let filter = b.add_node("filter", 60 * MC);
    let pack = b.add_node("pack", 8 * MC);
    let tx = b.add_node("transmit", 40 * MC);
    b.add_edge(sample, filter).unwrap();
    b.add_edge(filter, pack).unwrap();
    b.add_edge(pack, tx).unwrap();
    b.build().unwrap()
}

fn calibration_graph() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("calibrate");
    let measure = b.add_node("self-measure", 40 * MC);
    let update = b.add_node("update-coeffs", 25 * MC);
    b.add_edge(measure, update).unwrap();
    b.build().unwrap()
}

fn main() {
    let mut set = TaskSet::new();
    set.push(PeriodicTaskGraph::new(sensing_graph(), 0.250).unwrap());
    set.push(PeriodicTaskGraph::new(calibration_graph(), 2.0).unwrap());
    let processor = paper_processor();
    println!(
        "sensor node: U = {:.3}, {} tasks across {} graphs",
        set.utilization(processor.fmax()),
        set.total_nodes(),
        set.len()
    );

    // BAS-2cc: laEDF would pin the frequency floor at this light load
    // anyway, so pair pUBS with ccEDF (the workspace's supplementary row).
    let mut cell = StochasticKibam::paper_cell(17);
    let out = Experiment::new(&set)
        .spec(SchedulerSpec::bas2cc())
        .processor(&processor)
        .seed(17)
        .horizon(7.0 * 86_400.0)
        .sampler(SamplerKind::Persistent)
        .battery(&mut cell)
        .run()
        .expect("no deadline misses");
    let report = out.battery.expect("report");
    let readings = out.metrics.instances_completed;
    println!(
        "\nBAS-2cc mission: {:.1} hours on one cell, {} task-graph instances,",
        report.lifetime_minutes() / 60.0,
        readings
    );
    println!(
        "  {:.0} mAh extracted, average draw {:.0} mA, {} preemptions, 0 misses",
        report.delivered_mah(),
        out.metrics.average_current() * 1000.0,
        out.metrics.preemptions
    );
    assert_eq!(out.metrics.deadline_misses, 0);

    // The EDF baseline for contrast, same workload and seed. The spec is
    // parsed from its canonical label to show the string round-trip CLIs use.
    let spec: SchedulerSpec = "noDVS+random/all".parse().expect("valid spec label");
    let mut cell = StochasticKibam::paper_cell(17);
    let edf = Experiment::new(&set)
        .spec(spec)
        .processor(&processor)
        .seed(17)
        .horizon(7.0 * 86_400.0)
        .sampler(SamplerKind::Persistent)
        .battery(&mut cell)
        .run()
        .expect("no deadline misses")
        .battery
        .expect("report");
    println!(
        "\nEDF baseline: {:.1} hours — battery awareness extends the mission {:.1}x",
        edf.lifetime_minutes() / 60.0,
        report.lifetime / edf.lifetime
    );
}
