//! A handheld media player — the motivating workload class of the paper's
//! introduction ("continuously increasing functionality and complex
//! applications being integrated with handheld devices").
//!
//! Three periodic task graphs share one DVS processor:
//!
//! * **video pipeline** (40 ms period — 25 fps): demux → [video decode,
//!   audio decode] → A/V sync → render;
//! * **UI/overlay** (100 ms period): poll input → update overlay;
//! * **housekeeping** (500 ms period): buffer refill → codec adaptation.
//!
//! The example builds the graphs by hand (showing the `TaskGraphBuilder`
//! API) and loads everything else — scheduler lineup, platform, battery,
//! sampler, horizon, seed — from `scenarios/media-player.toml`, then asks
//! the question a product engineer would: *how many minutes of playback
//! does battery-aware scheduling buy on one AAA cell?*
//!
//! Run with: `cargo run --release --example media_player`

use battery_aware_scheduling::prelude::*;
use std::path::Path;

/// Mega-cycles at the paper's 1 GHz processor.
const MC: u64 = 1_000_000;

fn video_pipeline() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("video");
    let demux = b.add_node("demux", 4 * MC);
    let vdec = b.add_node("video-decode", 14 * MC);
    let adec = b.add_node("audio-decode", 6 * MC);
    let sync = b.add_node("av-sync", 2 * MC);
    let render = b.add_node("render", 4 * MC);
    b.add_edge(demux, vdec).unwrap();
    b.add_edge(demux, adec).unwrap();
    b.add_edge(vdec, sync).unwrap();
    b.add_edge(adec, sync).unwrap();
    b.add_edge(sync, render).unwrap();
    b.build().expect("video pipeline is a DAG")
}

fn ui_overlay() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("ui");
    let poll = b.add_node("poll-input", 2 * MC);
    let draw = b.add_node("draw-overlay", 8 * MC);
    b.add_edge(poll, draw).unwrap();
    b.build().expect("ui graph is a DAG")
}

fn housekeeping() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("housekeeping");
    let refill = b.add_node("buffer-refill", 30 * MC);
    let adapt = b.add_node("codec-adapt", 20 * MC);
    b.add_edge(refill, adapt).unwrap();
    b.build().expect("housekeeping graph is a DAG")
}

fn main() {
    let mut set = TaskSet::new();
    set.push(PeriodicTaskGraph::new(video_pipeline(), 0.040).unwrap());
    set.push(PeriodicTaskGraph::new(ui_overlay(), 0.100).unwrap());
    set.push(PeriodicTaskGraph::new(housekeeping(), 0.500).unwrap());

    // The run configuration comes from the scenario file; the hand-built
    // task set replaces its generated workload (`run_sweep_with_set`).
    let scenario = Scenario::load(Path::new("scenarios/media-player.toml"))
        .expect("scenarios/media-player.toml loads (run from the workspace root)");
    let processor = scenario.build_processor().expect("valid processor preset");
    let u = set.utilization(processor.fmax());
    println!("media player: U = {u:.3}, hyperperiod = {:?} s", set.hyperperiod(0.02));
    assert!(u <= 1.0, "must be schedulable");

    // Playback time on one AAA cell, per scheduler of the scenario lineup.
    println!("\nplayback time on one 2000 mAh AAA NiMH cell:");
    let report = scenario.run_sweep_with_set(&set).expect("schedulable");
    let mut results = Vec::new();
    for spec in &report.specs {
        let trial = &spec.trials[0];
        assert_eq!(trial.deadline_misses, 0, "{} must not miss deadlines", spec.label);
        println!(
            "  {:6} {:7.0} min  ({:.0} mAh extracted, {} frames)",
            spec.label,
            trial.lifetime_minutes().expect("battery run"),
            trial.delivered_mah.expect("battery run"),
            trial.instances_completed
        );
        results.push((spec.label.clone(), trial.lifetime_minutes().expect("battery run")));
    }
    let edf = results.iter().find(|(n, _)| n == "EDF").expect("lineup has EDF").1;
    let best = results.iter().map(|r| r.1).fold(0.0, f64::max);
    println!(
        "\nbattery-aware DVS buys {:.0} extra minutes of playback (+{:.0}%) over plain EDF",
        best - edf,
        (best / edf - 1.0) * 100.0
    );
}
