//! Quickstart: schedule a random periodic task set five ways and watch the
//! battery live longer under battery-aware scheduling.
//!
//! One [`Sweep`] expresses the whole comparison: the Table-2 scheduler
//! lineup × one workload × the paper's battery, with per-scheme summaries
//! dropping out of the report.
//!
//! Run with: `cargo run --release --example quickstart`

use battery_aware_scheduling::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A workload: four periodic task graphs, 70 % worst-case utilization —
    //    the paper's evaluation setup, scaled to the 1 GHz processor.
    let mut rng = StdRng::seed_from_u64(2024);
    let workload = TaskSetConfig {
        graphs: 4,
        graph: GeneratorConfig {
            nodes: (5, 15),
            wcet: (10_000_000, 100_000_000), // 10–100 ms at 1 GHz
            shape: GraphShape::Layered { layers: 3, edge_prob: 0.2 },
        },
        utilization: 0.7,
        fmax: 1.0e9,
        period_quantum: None,
    };
    let set = workload.generate(&mut rng).expect("valid workload");
    println!(
        "workload: {} graphs, {} tasks total, U = {:.2}",
        set.len(),
        set.total_nodes(),
        set.utilization(1.0e9)
    );

    // 2. The platform: the paper's 3-OPP 1 GHz processor and its 1.2 V,
    //    2000 mAh AAA NiMH cell.
    let processor = paper_processor();

    // 3. Run the Table-2 lineup until the battery dies — one sweep over the
    //    fixed workload, each scheme co-simulated against a fresh cell.
    let report = Sweep::over_seeds(7, 1)
        .specs(SchedulerSpec::table2_lineup())
        .set(&set)
        .processor(&processor)
        .horizon(86_400.0)
        .battery(|_seed| Box::new(StochasticKibam::paper_cell(99)))
        .run()
        .expect("schedulable workload");

    println!("\n{:8}  {:>12}  {:>10}", "scheme", "charge (mAh)", "life (min)");
    for spec in &report.specs {
        let trial = &spec.trials[0];
        assert_eq!(trial.deadline_misses, 0, "{} must not miss deadlines", spec.label);
        println!(
            "{:8}  {:>12.0}  {:>10.0}",
            spec.label,
            trial.delivered_mah.expect("battery run"),
            trial.lifetime_minutes().expect("battery run")
        );
    }
    println!("\nevery scheme meets every deadline; the DVS + battery-aware schemes");
    println!("simply extract more of the cell's charge and spend it more slowly.");
}
