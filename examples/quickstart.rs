//! Quickstart: run a checked-in scenario file and watch the battery live
//! longer under battery-aware scheduling.
//!
//! The whole comparison — the Table-2 scheduler lineup × one random
//! paper-scale workload × the paper's battery — is described declaratively
//! by `scenarios/quickstart.toml` and loaded as a [`Scenario`]; the same
//! file runs through the CLI as `bas run scenarios/quickstart.toml`.
//!
//! Run with: `cargo run --release --example quickstart`

use battery_aware_scheduling::prelude::*;
use std::path::Path;

fn main() {
    // 1. The experiment description lives in a file, not in code: edit the
    //    TOML (utilization, lineup, battery model, seeds …) and re-run.
    let scenario = Scenario::load(Path::new("scenarios/quickstart.toml"))
        .expect("scenarios/quickstart.toml loads (run from the workspace root)");
    println!(
        "scenario '{}': {} graphs/set at U = {}, battery {}, {} schedulers",
        scenario.name,
        scenario.graphs,
        scenario.util,
        scenario.battery,
        scenario.specs.len()
    );

    // 2. Run it. A `sweep` scenario maps straight onto the `Sweep` builder;
    //    trial seeds, workload generation and battery instances all derive
    //    from the scenario's seed, so the run is exactly reproducible.
    let report = scenario.run_sweep().expect("schedulable workload");

    println!("\n{:8}  {:>12}  {:>10}", "scheme", "charge (mAh)", "life (min)");
    for spec in &report.specs {
        let trial = &spec.trials[0];
        assert_eq!(trial.deadline_misses, 0, "{} must not miss deadlines", spec.label);
        println!(
            "{:8}  {:>12.0}  {:>10.0}",
            spec.label,
            trial.delivered_mah.expect("battery run"),
            trial.lifetime_minutes().expect("battery run")
        );
    }
    println!("\nevery scheme meets every deadline; the DVS + battery-aware schemes");
    println!("simply extract more of the cell's charge and spend it more slowly.");

    // 3. The headline number, computed from the report.
    let life = |label: &str| {
        report.spec(label).expect(label).trials[0].lifetime_minutes().expect("battery run")
    };
    println!(
        "BAS-2 lifetime vs plain EDF: {:+.0}% on this workload",
        (life("BAS-2") / life("EDF") - 1.0) * 100.0
    );
}
